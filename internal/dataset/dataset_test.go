package dataset_test

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
	"testing/quick"

	"detective/internal/consistency"
	"detective/internal/dataset"
	"detective/internal/kb"
	"detective/internal/repair"
	"detective/internal/similarity"
)

func TestPaperExampleShape(t *testing.T) {
	ex := dataset.NewPaperExample()
	if ex.Dirty.Len() != 4 || ex.Truth.Len() != 4 {
		t.Fatalf("tables have %d/%d rows, want 4/4", ex.Dirty.Len(), ex.Truth.Len())
	}
	if len(ex.Rules) != 4 {
		t.Fatalf("%d rules, want the 4 of Figure 4", len(ex.Rules))
	}
	for _, r := range ex.Rules {
		if err := r.Validate(ex.Schema); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
	// Table I errors: r1 Prize+City, r2 Institution, r3 Country+Prize,
	// r4 Institution+City = 7 differing cells.
	if d := ex.Dirty.Diff(ex.Truth); len(d) != 7 {
		t.Errorf("dirty/truth differ in %d cells, want 7", len(d))
	}
}

func TestNobelDeterminism(t *testing.T) {
	a := dataset.NewNobel(5, 100)
	b := dataset.NewNobel(5, 100)
	for i := range a.Truth.Tuples {
		if !a.Truth.Tuples[i].Equal(b.Truth.Tuples[i]) {
			t.Fatalf("row %d differs between identical seeds", i)
		}
	}
	if a.Yago.NumTriples() != b.Yago.NumTriples() {
		t.Fatal("KB builds differ between identical seeds")
	}
	c := dataset.NewNobel(6, 100)
	same := true
	for i := range a.Truth.Tuples {
		if !a.Truth.Tuples[i].Equal(c.Truth.Tuples[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestNobelWorldInvariants(t *testing.T) {
	b := dataset.NewNobel(3, 300)
	if b.Truth.Len() != 300 {
		t.Fatalf("rows = %d", b.Truth.Len())
	}
	// Names are unique (they are the key attribute).
	seen := make(map[string]bool)
	for _, tu := range b.Truth.Tuples {
		name := tu.Values[0]
		if seen[name] {
			t.Fatalf("duplicate laureate name %q", name)
		}
		seen[name] = true
	}
	// Yago covers more laureates than DBpedia (the Table III driver).
	yago := len(b.Yago.InstancesOf(b.Yago.Lookup("Nobel laureates in Chemistry")))
	dbp := len(b.DBpedia.InstancesOf(b.DBpedia.Lookup("Nobel laureates in Chemistry")))
	if yago <= dbp {
		t.Errorf("laureate coverage: Yago %d <= DBpedia %d", yago, dbp)
	}
	// Yago has a taxonomy; DBpedia is flat.
	if b.Yago.Lookup("scientist") == kb.Invalid {
		t.Error("Yago build missing taxonomy")
	}
	if b.DBpedia.Lookup("scientist") != kb.Invalid {
		t.Error("DBpedia build should be flat")
	}
}

func TestNobelRulesConsistentOnSample(t *testing.T) {
	b := dataset.NewNobel(3, 120)
	inj := b.Inject(dataset.Noise{Rate: 0.15, TypoFrac: 0.5, Seed: 9})
	e, err := repair.NewEngine(b.Rules, b.Yago, b.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if v := consistency.Check(e, inj.Dirty, 12); len(v) != 0 {
		t.Fatalf("Nobel rules inconsistent: %v", v)
	}
}

func TestUISWorldInvariants(t *testing.T) {
	b := dataset.NewUIS(3, 500)
	if b.Truth.Len() != 500 {
		t.Fatalf("rows = %d", b.Truth.Len())
	}
	zipCol := b.Schema.MustCol("Zip")
	cityCol := b.Schema.MustCol("City")
	stateCol := b.Schema.MustCol("State")
	zipToCity := make(map[string]string)
	cityToState := make(map[string]string)
	for _, tu := range b.Truth.Tuples {
		// Zip -> City and City -> State are functional in the truth
		// (the FDs the Llunatic/CFD baselines rely on).
		if c, ok := zipToCity[tu.Values[zipCol]]; ok && c != tu.Values[cityCol] {
			t.Fatalf("zip %s maps to two cities", tu.Values[zipCol])
		}
		zipToCity[tu.Values[zipCol]] = tu.Values[cityCol]
		if s, ok := cityToState[tu.Values[cityCol]]; ok && s != tu.Values[stateCol] {
			t.Fatalf("city %s maps to two states", tu.Values[cityCol])
		}
		cityToState[tu.Values[cityCol]] = tu.Values[stateCol]
	}
	// DBpedia drops the bornInState shortcut entirely.
	if b.DBpedia.Lookup("bornInState") != kb.Invalid {
		t.Error("DBpedia UIS build must not materialize bornInState")
	}
	if b.Yago.Lookup("bornInState") == kb.Invalid {
		t.Error("Yago UIS build must materialize bornInState")
	}
}

func TestWebTablesShape(t *testing.T) {
	wb := dataset.NewWebTables(11)
	if len(wb.Tables) != 37 {
		t.Fatalf("%d tables, want 37", len(wb.Tables))
	}
	totalRows := 0
	for _, d := range wb.Tables {
		totalRows += d.Truth.Len()
		if d.Truth.Len() == 0 {
			t.Errorf("table %s is empty", d.Name)
		}
		for _, r := range d.Rules {
			if err := r.Validate(d.Schema); err != nil {
				t.Errorf("%s/%s: %v", d.Name, r.Name, err)
			}
		}
		if err := d.Pattern.Validate(d.Schema); err != nil {
			t.Errorf("%s pattern: %v", d.Name, err)
		}
		if dom := wb.DomainOf[d.Name]; dom == "" {
			t.Errorf("table %s has no domain", d.Name)
		}
	}
	// Average ~44 tuples, as in the paper.
	avg := float64(totalRows) / float64(len(wb.Tables))
	if avg < 35 || avg > 55 {
		t.Errorf("average table size %.1f, want ≈44", avg)
	}
	// Two-column tables exist and have annotation-only rules.
	annotOnly := 0
	for _, d := range wb.Tables {
		if d.Schema.Arity() == 2 {
			for _, r := range d.Rules {
				if r.Neg != nil {
					t.Errorf("2-column table %s has a repairing rule", d.Name)
				}
			}
			annotOnly++
		}
	}
	if annotOnly == 0 {
		t.Error("no 2-column (annotation-only) tables generated")
	}
	// Total distinct rules is close to the paper's 50.
	ruleNames := make(map[string]bool)
	for _, d := range wb.Tables {
		for _, r := range d.Rules {
			ruleNames[r.Name] = true
		}
	}
	if len(ruleNames) < 10 {
		t.Errorf("only %d distinct rules", len(ruleNames))
	}
	// Yago lacks the paintings domain; DBpedia has everything.
	if wb.Yago.Lookup("painting") != kb.Invalid {
		t.Error("Yago should not cover the paintings domain")
	}
	if wb.DBpedia.Lookup("painting") == kb.Invalid {
		t.Error("DBpedia should cover the paintings domain")
	}
}

func TestInjectBasics(t *testing.T) {
	b := dataset.NewNobel(3, 200)
	inj := b.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 4})

	wantErrors := int(0.10*float64(b.Truth.NumCells()) + 0.5)
	if got := len(inj.Wrong); got < wantErrors-8 || got > wantErrors {
		t.Errorf("injected %d errors, want ≈%d", got, wantErrors)
	}
	if inj.Typos+inj.Semantics != len(inj.Wrong) {
		t.Errorf("typos %d + semantics %d != errors %d", inj.Typos, inj.Semantics, len(inj.Wrong))
	}
	// Every recorded error coordinate really differs, and holds the
	// truth value in Wrong.
	for cell, truth := range inj.Wrong {
		got := inj.Dirty.Tuples[cell[0]].Values[cell[1]]
		want := b.Truth.Tuples[cell[0]].Values[cell[1]]
		if truth != want {
			t.Fatalf("Wrong[%v] = %q, truth is %q", cell, truth, want)
		}
		if got == want {
			t.Fatalf("cell %v recorded as wrong but equals truth", cell)
		}
	}
	// Untouched cells are identical to truth.
	diff := inj.Dirty.Diff(b.Truth)
	if len(diff) != len(inj.Wrong) {
		t.Errorf("%d differing cells vs %d recorded errors", len(diff), len(inj.Wrong))
	}
	// Truth itself is untouched.
	if b.Truth.NumMarked() != 0 {
		t.Error("truth gained marks")
	}
}

func TestInjectRateExtremes(t *testing.T) {
	b := dataset.NewNobel(3, 50)
	if inj := b.Inject(dataset.Noise{Rate: 0, TypoFrac: 0.5, Seed: 1}); len(inj.Wrong) != 0 {
		t.Errorf("rate 0 injected %d errors", len(inj.Wrong))
	}
	inj := b.Inject(dataset.Noise{Rate: 1.0, TypoFrac: 1.0, Seed: 1})
	if len(inj.Wrong) != b.Truth.NumCells() {
		t.Errorf("rate 1 injected %d errors, want %d", len(inj.Wrong), b.Truth.NumCells())
	}
	if inj.Semantics != 0 {
		t.Errorf("TypoFrac 1 produced %d semantic errors", inj.Semantics)
	}
}

func TestInjectTypoFracZeroPrefersSemantic(t *testing.T) {
	b := dataset.NewNobel(3, 200)
	inj := b.Inject(dataset.Noise{Rate: 0.2, TypoFrac: 0, Seed: 2})
	if inj.Semantics == 0 {
		t.Fatal("TypoFrac 0 produced no semantic errors")
	}
	// Typos still appear where no semantic alternative exists (e.g.
	// the Name column).
	if inj.Typos == 0 {
		t.Fatal("expected typo fallbacks on columns without semantic confusions")
	}
}

func TestTypoAlwaysDiffers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(s string) bool {
		if len(s) > 30 {
			s = s[:30]
		}
		return dataset.Typo(rng, s) != s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMangleIsFarFromOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		s := "Israel Institute of Technology"
		m := dataset.Mangle(rng, s)
		if similarity.EDWithin(s, m, 2) {
			t.Fatalf("Mangle produced a near-miss %q", m)
		}
	}
}

func TestSemanticAlternativesAreConfusable(t *testing.T) {
	b := dataset.NewNobel(3, 100)
	rng := rand.New(rand.NewSource(3))
	// City alternatives are real cities in the KB (that is what makes
	// them dangerous for IC-based repair and detectable for DRs).
	cls := b.Yago.Lookup("city")
	found := 0
	for row := 0; row < b.Truth.Len(); row++ {
		alt, ok := b.Semantic(row, "City", rng)
		if !ok {
			continue
		}
		found++
		id := b.Yago.Lookup(alt)
		if id == kb.Invalid || !b.Yago.HasType(id, cls) {
			t.Fatalf("semantic City alternative %q is not a KB city", alt)
		}
	}
	if found == 0 {
		t.Fatal("no semantic City alternatives generated")
	}
}

// TestZipfTableDeterminism locks the Zipf corpus generator to the
// checked-in sample: the memo benchmarks and the nightly lane replay
// exactly this stream, so the draw must be reproducible across
// machines and Go releases for the numbers to be comparable.
func TestZipfTableDeterminism(t *testing.T) {
	b := dataset.NewNobel(7, 64)
	inj := b.Inject(dataset.Noise{Rate: 0.3, TypoFrac: 0.5, Seed: 7})
	zt := dataset.ZipfTable(inj.Dirty, 7, 1.1, 256)

	var buf bytes.Buffer
	if err := zt.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("../../testdata/zipf_sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("ZipfTable(nobel seed=7 n=64 noise=0.3, seed=7, s=1.1, n=256) diverged from testdata/zipf_sample.csv\n(regenerate with: datagen -dataset nobel -n 64 -seed 7 -noise 0.3 -zipf 1.1 -zipf-rows 256)")
	}
}

// TestZipfTableSkew sanity-checks the distribution shape: the hottest
// row must dominate a uniform draw's share, and the clamped s <= 1
// path must still terminate and fill the request.
func TestZipfTableSkew(t *testing.T) {
	b := dataset.NewNobel(3, 100)
	zt := dataset.ZipfTable(b.Truth, 3, 1.1, 5000)
	if zt.Len() != 5000 {
		t.Fatalf("len = %d, want 5000", zt.Len())
	}
	counts := map[string]int{}
	for _, tu := range zt.Tuples {
		counts[tu.Values[0]]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Uniform would give ~50 per row; Zipf s=1.1 concentrates far
	// more than 5x that on the head.
	if max < 250 {
		t.Errorf("hottest row drawn %d times; want Zipf head concentration (>= 250 of 5000)", max)
	}
	if got := dataset.ZipfTable(b.Truth, 3, 0.5, 100).Len(); got != 100 {
		t.Errorf("clamped skew corpus has %d rows, want 100", got)
	}
}
