package dataset

import (
	"math/rand"

	"detective/internal/cfd"
	"detective/internal/kb"
	"detective/internal/llunatic"
	"detective/internal/relation"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// The UIS dataset re-implements the idea of the UIS Database
// Generator the paper uses (§V-A): synthetic person/address records,
// UIS(Name, SSN, Address, City, State, Zip), scaled to 100K tuples.
// The world carries birth city/state as the semantically confusable
// counterparts of the residence columns, and the KB aligns the
// columns to person/city/state/zipcode classes plus literals.

type uisPerson struct {
	name, ssn, address string
	city               string // residence city
	birthCity          string
}

type uisWorld struct {
	states  []string
	cities  []string
	stateOf map[string]string   // city -> state
	zipsOf  map[string][]string // city -> zip codes
	zipCity map[string]string   // zip -> city
	persons []uisPerson
}

func (w *uisWorld) zipOf(p uisPerson) string { return w.zipsOf[p.city][0] }

func newUISWorld(seed int64, n int) *uisWorld {
	rng := rand.New(rand.NewSource(seed))
	ng := newNameGen(rng, 3)

	w := &uisWorld{
		stateOf: make(map[string]string),
		zipsOf:  make(map[string][]string),
		zipCity: make(map[string]string),
	}
	for i := 0; i < 50; i++ {
		w.states = append(w.states, ng.Place(false))
	}
	zipSeen := make(map[string]bool)
	for i := 0; i < 400; i++ {
		city := ng.Place(true)
		w.cities = append(w.cities, city)
		w.stateOf[city] = pick(rng, w.states)
		nz := 1 + rng.Intn(3)
		for z := 0; z < nz; z++ {
			zip := digits(rng, 5)
			for zipSeen[zip] {
				zip = digits(rng, 5)
			}
			zipSeen[zip] = true
			w.zipsOf[city] = append(w.zipsOf[city], zip)
			w.zipCity[zip] = city
		}
	}
	streets := make([]string, 60)
	for i := range streets {
		streets[i] = ng.Place(false) + " Street"
	}
	ssnSeen := make(map[string]bool)
	for i := 0; i < n; i++ {
		ssn := digits(rng, 9)
		for ssnSeen[ssn] {
			ssn = digits(rng, 9)
		}
		ssnSeen[ssn] = true
		w.persons = append(w.persons, uisPerson{
			name:      ng.Person(),
			ssn:       ssn,
			address:   digits(rng, 1+rng.Intn(4)) + " " + pick(rng, streets),
			city:      pick(rng, w.cities),
			birthCity: pick(rng, w.cities),
		})
	}
	return w
}

const (
	clsPerson = "person"
	clsState  = "state"
	clsZip    = "zipcode"

	relBornIn      = "bornIn"
	relHasZip      = "hasZip"
	relHasSSN      = "hasSSN"
	relHasAddress  = "hasAddress"
	relBornInState = "bornInState"
)

func buildUISKB(w *uisWorld, p KBProfile) *kb.Graph {
	rng := rand.New(rand.NewSource(p.Seed))
	g := kb.New()
	if p.RichTaxonomy {
		g.AddSubclass(clsPerson, "agent")
		g.AddSubclass(clsCity, "location")
		g.AddSubclass(clsState, "location")
	}
	for _, city := range w.cities {
		g.AddType(city, clsCity)
		g.AddTriple(city, relLocatedIn, w.stateOf[city])
		for _, zip := range w.zipsOf[city] {
			g.AddType(zip, clsZip)
			g.AddTriple(city, relHasZip, zip)
		}
	}
	for _, st := range w.states {
		g.AddType(st, clsState)
	}
	for _, pe := range w.persons {
		if !p.coveredEntity(rng) {
			continue
		}
		g.AddType(pe.name, clsPerson)
		if p.keepFact(rng, relLivesIn) {
			g.AddTriple(pe.name, relLivesIn, pe.city)
		}
		if p.keepFact(rng, relBornIn) {
			g.AddTriple(pe.name, relBornIn, pe.birthCity)
		}
		if p.keepFact(rng, relBornInState) {
			g.AddTriple(pe.name, relBornInState, w.stateOf[pe.birthCity])
		}
		if p.keepFact(rng, relHasSSN) {
			g.AddPropertyTriple(pe.name, relHasSSN, pe.ssn)
		}
		if p.keepFact(rng, relHasAddress) {
			g.AddPropertyTriple(pe.name, relHasAddress, pe.address)
		}
	}
	g.Freeze()
	return g
}

// UISYagoProfile and UISDBpediaProfile are calibrated to the Table III
// shape for UIS: Yago recall ≈ 0.73 vs DBpedia ≈ 0.63, the gap partly
// driven by DBpedia not materializing the bornInState shortcut.
func UISYagoProfile() KBProfile {
	return KBProfile{Name: "Yago", RichTaxonomy: true, EntityCoverage: 0.93, FactCoverage: 0.94, Seed: 303}
}

func UISDBpediaProfile() KBProfile {
	return KBProfile{
		Name: "DBpedia", RichTaxonomy: false, EntityCoverage: 0.90, FactCoverage: 0.88,
		DropRelations: map[string]bool{relBornInState: true}, Seed: 404,
	}
}

// uisRules builds the five detective rules for UIS. City and State
// carry full negative semantics (born-in vs lives-in); Zip, SSN and
// Address are positive rules that mark correct values and normalize
// typos — the conservative stance the paper takes when no negative
// semantics is trustworthy.
func uisRules() []*rules.DR {
	name := func(id string) rules.Node {
		return rules.Node{Name: id, Col: "Name", Type: clsPerson, Sim: similarity.Eq}
	}
	ed2 := similarity.EDK(2)

	cityNeg := rules.Node{Name: "n", Col: "City", Type: clsCity, Sim: ed2}
	rCity := &rules.DR{
		Name:     "uis_city",
		Evidence: []rules.Node{name("e1")},
		Pos:      rules.Node{Name: "p", Col: "City", Type: clsCity, Sim: ed2},
		Neg:      &cityNeg,
		Edges: []rules.Edge{
			{From: "e1", Rel: relLivesIn, To: "p"},
			{From: "e1", Rel: relBornIn, To: "n"},
		},
	}

	stateNeg := rules.Node{Name: "n", Col: "State", Type: clsState, Sim: ed2}
	rState := &rules.DR{
		Name: "uis_state",
		Evidence: []rules.Node{name("e1"),
			{Name: "e2", Col: "City", Type: clsCity, Sim: ed2}},
		Pos: rules.Node{Name: "p", Col: "State", Type: clsState, Sim: ed2},
		Neg: &stateNeg,
		Edges: []rules.Edge{
			{From: "e1", Rel: relLivesIn, To: "e2"},
			{From: "e2", Rel: relLocatedIn, To: "p"},
			{From: "e1", Rel: relBornInState, To: "n"},
		},
	}

	rZip := &rules.DR{
		Name: "uis_zip",
		Evidence: []rules.Node{name("e1"),
			{Name: "e2", Col: "City", Type: clsCity, Sim: ed2}},
		Pos: rules.Node{Name: "p", Col: "Zip", Type: clsZip, Sim: similarity.EDK(1)},
		Edges: []rules.Edge{
			{From: "e1", Rel: relLivesIn, To: "e2"},
			{From: "e2", Rel: relHasZip, To: "p"},
		},
	}

	rSSN := &rules.DR{
		Name:     "uis_ssn",
		Evidence: []rules.Node{name("e1")},
		Pos:      rules.Node{Name: "p", Col: "SSN", Type: kb.LiteralClass, Sim: ed2},
		Edges:    []rules.Edge{{From: "e1", Rel: relHasSSN, To: "p"}},
	}

	rAddress := &rules.DR{
		Name:     "uis_address",
		Evidence: []rules.Node{name("e1")},
		Pos:      rules.Node{Name: "p", Col: "Address", Type: kb.LiteralClass, Sim: similarity.EDK(3)},
		Edges:    []rules.Edge{{From: "e1", Rel: relHasAddress, To: "p"}},
	}

	return []*rules.DR{rCity, rState, rZip, rSSN, rAddress}
}

// UISZipPathRule builds the negative-path variant of the Zip rule —
// the extension the paper sketches in §II-C: a wrong Zip that is the
// zip code of the person's *birth* city is detected through the
// two-hop path Name -bornIn-> ?city -hasZip-> n and repaired from the
// residence city. Swap it in for the plain uis_zip rule to measure
// the recall gained by negative paths (see eval.ExtensionPathRule).
func UISZipPathRule() *rules.DR {
	ed2 := similarity.EDK(2)
	neg := rules.Node{Name: "n", Col: "Zip", Type: clsZip, Sim: similarity.Eq}
	return &rules.DR{
		Name: "uis_zip_path",
		Evidence: []rules.Node{
			{Name: "e1", Col: "Name", Type: clsPerson, Sim: similarity.Eq},
			{Name: "e2", Col: "City", Type: clsCity, Sim: ed2},
		},
		Pos:  rules.Node{Name: "p", Col: "Zip", Type: clsZip, Sim: similarity.EDK(1)},
		Neg:  &neg,
		Path: []rules.PathNode{{Name: "bc", Type: clsCity}},
		Edges: []rules.Edge{
			{From: "e1", Rel: relLivesIn, To: "e2"},
			{From: "e2", Rel: relHasZip, To: "p"},
			{From: "e1", Rel: relBornIn, To: "bc"},
			{From: "bc", Rel: relHasZip, To: "n"},
		},
	}
}

func uisPattern() rules.Graph {
	eq := similarity.Eq
	return rules.Graph{
		Nodes: []rules.Node{
			{Name: "v1", Col: "Name", Type: clsPerson, Sim: eq},
			{Name: "v2", Col: "SSN", Type: kb.LiteralClass, Sim: eq},
			{Name: "v3", Col: "Address", Type: kb.LiteralClass, Sim: eq},
			{Name: "v4", Col: "City", Type: clsCity, Sim: eq},
			{Name: "v5", Col: "State", Type: clsState, Sim: eq},
			{Name: "v6", Col: "Zip", Type: clsZip, Sim: eq},
		},
		Edges: []rules.Edge{
			{From: "v1", Rel: relHasSSN, To: "v2"},
			{From: "v1", Rel: relHasAddress, To: "v3"},
			{From: "v1", Rel: relLivesIn, To: "v4"},
			{From: "v4", Rel: relLocatedIn, To: "v5"},
			{From: "v4", Rel: relHasZip, To: "v6"},
		},
	}
}

// NewUIS builds the UIS bundle with n tuples (the paper scales to
// 100K).
func NewUIS(seed int64, n int) *Bundle {
	w := newUISWorld(seed, n)
	schema := relation.NewSchema("UIS", "Name", "SSN", "Address", "City", "State", "Zip")
	truth := relation.NewTable(schema)
	for _, pe := range w.persons {
		truth.Append(pe.name, pe.ssn, pe.address, pe.city, w.stateOf[pe.city], w.zipOf(pe))
	}
	d := Dataset{
		Name:       "UIS",
		Schema:     schema,
		Truth:      truth,
		KeyAttr:    "Name",
		ScopeByKey: true,
		KeyType:    clsPerson,
		Rules:      uisRules(),
		Pattern:    uisPattern(),
		FDs: []llunatic.FD{
			{LHS: []string{"Zip"}, RHS: "City"},
			{LHS: []string{"City"}, RHS: "State"},
		},
		CFDTemplates: []cfd.Template{
			{LHS: []string{"Zip"}, RHS: "City"},
			{LHS: []string{"City"}, RHS: "State"},
		},
		Semantic: func(row int, col string, rng *rand.Rand) (string, bool) {
			pe := w.persons[row]
			switch col {
			case "City":
				if pe.birthCity != pe.city {
					return pe.birthCity, true
				}
			case "State":
				if bs := w.stateOf[pe.birthCity]; bs != w.stateOf[pe.city] {
					return bs, true
				}
			case "Zip":
				if bz := w.zipsOf[pe.birthCity][0]; bz != w.zipOf(pe) {
					return bz, true
				}
			}
			return "", false
		},
	}
	return &Bundle{
		Dataset: d,
		Yago:    buildUISKB(w, UISYagoProfile()),
		DBpedia: buildUISKB(w, UISDBpediaProfile()),
	}
}
