package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "Depth.")
	g.Set(2.5)
	g.Add(-1)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestGetterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.", Label{"k", "v"})
	b := r.Counter("x_total", "other help ignored", Label{"k", "v"})
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := r.Counter("x_total", "X.", Label{"k", "w"})
	if a == c {
		t.Fatal("different label values must be distinct series")
	}
	h1 := r.Histogram("h", "H.", []float64{1, 2})
	h2 := r.Histogram("h", "H.", []float64{9})
	if h1 != h2 {
		t.Fatal("histogram getter must be idempotent regardless of buckets")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on type conflict")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// le="0.1" is cumulative and inclusive: 0.05 and 0.1 land there.
	for _, want := range []string{
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFuncCollectorsAndReplacement(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("cache_size", "Size.", func() float64 { return v })
	r.CounterFunc("cache_hits_total", "Hits.", func() float64 { return 42 })
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cache_size 1") {
		t.Fatalf("missing gauge func sample:\n%s", buf.String())
	}
	// Re-registration replaces the function (a rebuilt server re-points
	// the series at its new catalog).
	r.GaugeFunc("cache_size", "Size.", func() float64 { return 7 })
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cache_size 7") {
		t.Fatalf("replacement func not used:\n%s", buf.String())
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c_total", "C.").Inc()
				r.Gauge("g", "G.").Add(1)
				r.Histogram("h", "H.", []float64{0.5}).Observe(float64(i % 2))
				if i%100 == 0 {
					var buf strings.Builder
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total", "C.").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h", "H.", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
