package telemetry

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPMiddlewareMetrics(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "test")
	var logBuf bytes.Buffer
	m.SetLogger(slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug})))

	h := m.Handler("/ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if RequestID(r.Context()) == "" {
			t.Error("handler must see a request ID in its context")
		}
		if m.reg.Gauge("test_http_in_flight", "").Value() != 1 {
			t.Error("in-flight gauge must be 1 inside the handler")
		}
		io.WriteString(w, "hi")
	}))
	bad := m.Handler("/bad", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	}))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
		if rec.Header().Get(RequestIDHeader) == "" {
			t.Fatal("response must carry X-Request-ID")
		}
	}
	rec := httptest.NewRecorder()
	bad.ServeHTTP(rec, httptest.NewRequest("GET", "/bad", nil))

	if got := reg.Counter("test_http_requests_total", "", Label{"route", "/ok"}, Label{"code", "200"}).Value(); got != 3 {
		t.Fatalf("ok counter = %d, want 3", got)
	}
	if got := reg.Counter("test_http_requests_total", "", Label{"route", "/bad"}, Label{"code", "418"}).Value(); got != 1 {
		t.Fatalf("bad counter = %d, want 1", got)
	}
	if got := reg.Gauge("test_http_in_flight", "").Value(); got != 0 {
		t.Fatalf("in-flight after requests = %v, want 0", got)
	}
	if got := reg.Histogram("test_http_request_seconds", "", nil, Label{"route", "/ok"}).Count(); got != 3 {
		t.Fatalf("latency observations = %d, want 3", got)
	}
	if !strings.Contains(logBuf.String(), "route=/ok") {
		t.Fatalf("access log missing route:\n%s", logBuf.String())
	}
}

// TestStatusWriterUnwrap proves the middleware does not break
// http.ResponseController — the streaming /clean path needs Flush and
// EnableFullDuplex through the wrapper.
func TestStatusWriterUnwrap(t *testing.T) {
	m := NewHTTPMetrics(NewRegistry(), "test")
	flushed := false
	h := m.Handler("/stream", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rc := http.NewResponseController(w)
		io.WriteString(w, "chunk")
		if err := rc.Flush(); err != nil {
			t.Errorf("Flush through statusWriter: %v", err)
			return
		}
		flushed = true
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !flushed {
		t.Fatal("handler did not flush")
	}
}

func TestOpsMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_test_total", "A counter.").Inc()
	srv := httptest.NewServer(NewOpsMux(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics exposition invalid: %v\n%s", err, body)
	}
	if !bytes.Contains(body, []byte("ops_test_total 1")) {
		t.Fatalf("metrics missing sample:\n%s", body)
	}

	pp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", pp.StatusCode)
	}
}
