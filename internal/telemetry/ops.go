package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// NewOpsMux builds the operator-facing mux served on a separate
// listener (cmd/detectived -ops-addr): GET /metrics with the
// registry's Prometheus exposition, plus net/http/pprof under
// /debug/pprof/. Keeping these off the public port means the serving
// surface stays minimal while operators still get profiles and
// metrics. A nil reg uses the default registry.
func NewOpsMux(reg *Registry) *http.ServeMux {
	if reg == nil {
		reg = Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = reg.WritePrometheus(w)
	})
	// Explicit pprof registration: a blank import of net/http/pprof
	// would pollute http.DefaultServeMux, which the public server does
	// not use but other code might accidentally serve.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
