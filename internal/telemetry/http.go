package telemetry

import (
	"log/slog"
	"net/http"
	"strconv"
)

// RequestIDHeader is the response header carrying the request's span
// ID, so clients and log aggregators can correlate.
const RequestIDHeader = "X-Request-ID"

// HTTPMetrics instruments http.Handlers: per-route request counters
// labeled by status code, per-route latency histograms, and an
// in-flight gauge, all in one registry namespace. Each request also
// gets a root span whose ID is echoed in X-Request-ID and available to
// the handler via RequestID(r.Context()).
type HTTPMetrics struct {
	reg      *Registry
	ns       string
	inFlight *Gauge
	logger   *slog.Logger // optional per-request access log (Debug)
	slow     *SlowLogger  // optional slow-request log (Warn)
}

// NewHTTPMetrics creates middleware state over reg with the metric
// namespace ns (series are named ns_http_*). A nil reg uses the
// default registry.
func NewHTTPMetrics(reg *Registry, ns string) *HTTPMetrics {
	if reg == nil {
		reg = Default()
	}
	return &HTTPMetrics{
		reg: reg,
		ns:  ns,
		inFlight: reg.Gauge(ns+"_http_in_flight",
			"Requests currently being served."),
	}
}

// SetLogger installs an access logger; every completed request is
// logged at Debug with its route, method, status, duration and
// request ID.
func (m *HTTPMetrics) SetLogger(l *slog.Logger) { m.logger = l }

// SetSlowLogger installs a slow-request logger.
func (m *HTTPMetrics) SetSlowLogger(sl *SlowLogger) { m.slow = sl }

// Registry returns the backing registry.
func (m *HTTPMetrics) Registry() *Registry { return m.reg }

// Handler wraps next with instrumentation for one route. The route
// string becomes the "route" label, so register one wrapper per
// pattern, not per request.
func (m *HTTPMetrics) Handler(route string, next http.Handler) http.Handler {
	hist := m.reg.Histogram(m.ns+"_http_request_seconds",
		"Request latency by route.", DefBuckets, Label{"route", route})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, sp := StartSpan(r.Context(), route)
		w.Header().Set(RequestIDHeader, sp.ID)
		m.inFlight.Inc()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		m.inFlight.Dec()
		d := sp.End()
		hist.Observe(d.Seconds())
		code := strconv.Itoa(sw.Status())
		m.reg.Counter(m.ns+"_http_requests_total",
			"Requests served by route and status code.",
			Label{"route", route}, Label{"code", code}).Inc()
		if m.logger != nil {
			m.logger.Debug("request",
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.String("code", code),
				slog.Duration("duration", d),
				slog.String("request_id", sp.ID))
		}
		m.slow.Observe(route, sp.ID, d,
			slog.String("method", r.Method), slog.String("code", code))
	})
}

// statusWriter captures the response status code. Unwrap exposes the
// underlying writer so http.ResponseController (and through it
// Flush/EnableFullDuplex on the streaming /clean path) keeps working.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Status returns the committed status code, or 200 if the handler
// finished without writing anything (net/http's implicit 200).
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
