// Package telemetry is the repo's zero-dependency observability layer:
// an atomic metrics registry (counters, gauges, fixed-bucket
// histograms) cheap enough for the repair hot path, Prometheus text
// exposition (format v0.0.4), and lightweight span tracing with IDs
// propagated through context.Context.
//
// Everything is stdlib-only. Collectors are created through idempotent
// registry getters — asking twice for the same (name, labels) returns
// the same collector — so packages can instrument themselves without
// coordinating registration order, and tests that build many engines
// share one set of series instead of colliding.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

// Counter is a monotonically increasing metric, safe for concurrent
// use. The zero value is usable but unregistered; obtain registered
// counters from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d; negative deltas are ignored (counters only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that may go up and down, safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Observe is lock-free: a
// binary search over the (immutable) upper bounds, one atomic bucket
// increment and one CAS-loop float add for the sum — cheap enough to
// sit on the repair hot path behind a sampler.
type Histogram struct {
	upper  []float64 // sorted upper bounds, +Inf implicit
	counts []atomic.Int64
	sum    atomicFloat
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	return &Histogram{upper: up, counts: make([]atomic.Int64, len(up)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.upper, v)].Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// atomicFloat is a float64 with atomic add, stored as raw bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// DefBuckets are general-purpose latency buckets in seconds, spanning
// 1µs (a single memoized check) to 10s (a pathological request).
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n buckets starting at start, each factor times
// the previous — for size- or count-shaped distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family. Exactly one of the
// collector fields is set.
type series struct {
	labels []Label // sorted by name
	key    string  // rendered label set, the family map key

	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
	counterFunc func() float64
	gaugeFunc   func() float64
}

// family groups every series sharing one metric name.
type family struct {
	name string
	help string
	typ  metricType
	ser  map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// format. All methods are safe for concurrent use.
type Registry struct {
	mu  sync.RWMutex
	fam map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fam: make(map[string]*family)} }

// std is the process-wide default registry, used by packages that
// instrument themselves without an explicit registry (the repair
// engine, the server's middleware by default).
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns the registered counter for (name, labels), creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getOrCreate(name, help, typeCounter, labels, func(s *series) {
		s.counter = &Counter{}
	})
	return s.counter
}

// Gauge returns the registered gauge for (name, labels), creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getOrCreate(name, help, typeGauge, labels, func(s *series) {
		s.gauge = &Gauge{}
	})
	return s.gauge
}

// Histogram returns the registered histogram for (name, labels),
// creating it with the given bucket upper bounds on first use (nil
// buckets pick DefBuckets). Later calls return the existing histogram
// regardless of the buckets argument.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.getOrCreate(name, help, typeHistogram, labels, func(s *series) {
		s.histogram = newHistogram(buckets)
	})
	return s.histogram
}

// CounterFunc registers fn as a counter series evaluated at scrape
// time — for exporting counters owned elsewhere (cache hit totals). A
// second registration for the same (name, labels) replaces the
// function, so rebuilt components (new server, new engine) can
// re-point the series at their live state.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, typeCounter, labels, fn)
}

// GaugeFunc registers fn as a gauge series evaluated at scrape time,
// with the same replace-on-reregister behavior as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, typeGauge, labels, fn)
}

// registerFunc inserts or replaces a scrape-time func series under the
// write lock, so replacement never races a concurrent scrape.
func (r *Registry) registerFunc(name, help string, typ metricType, labels []Label, fn func() float64) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	key := renderLabels(labels)
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, ser: make(map[string]*series)}
		r.fam[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s := &series{labels: ls, key: key}
	if typ == typeCounter {
		s.counterFunc = fn
	} else {
		s.gaugeFunc = fn
	}
	f.ser[key] = s
}

// getOrCreate finds or inserts the series, enforcing that one name
// maps to one metric type.
func (r *Registry) getOrCreate(name, help string, typ metricType, labels []Label, init func(*series)) *series {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	key := renderLabels(labels)

	r.mu.RLock()
	f := r.fam[name]
	var s *series
	var haveTyp metricType
	if f != nil {
		s = f.ser[key]
		haveTyp = f.typ
	}
	r.mu.RUnlock()
	if s != nil {
		if haveTyp != typ {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, haveTyp, typ))
		}
		return s
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.fam[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, ser: make(map[string]*series)}
		r.fam[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	if s = f.ser[key]; s != nil {
		return s
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	s = &series{labels: ls, key: key}
	init(s)
	f.ser[key] = s
	return s
}

// renderLabels renders a canonical sorted key for the label set.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}
