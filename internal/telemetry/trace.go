package telemetry

import (
	"context"
	"hash/maphash"
	"log/slog"
	"strconv"
	"sync/atomic"
	"time"
)

// Span is one timed unit of work. Spans use the monotonic clock
// (time.Now's monotonic reading survives wall-clock adjustments), so
// durations are correct across NTP steps. Spans are created with
// StartSpan and travel down call trees via context.Context.
type Span struct {
	// Name is the operation, e.g. a route ("/clean") or a stage.
	Name string
	// ID is a 16-hex-digit identifier, unique within the process, used
	// as the request ID in logs and the X-Request-ID header.
	ID string
	// Parent is the ID of the enclosing span, if any.
	Parent string

	start time.Time
}

type spanCtxKey struct{}

// idSeed randomizes span IDs per process (maphash seeds are random);
// idSeq makes them unique within the process. The odd multiplier
// spreads sequential counters over the ID space (SplitMix64 constant).
var (
	idSeed = maphash.Bytes(maphash.MakeSeed(), []byte("telemetry.span"))
	idSeq  atomic.Uint64
)

func newSpanID() string {
	v := idSeed ^ (idSeq.Add(1) * 0x9e3779b97f4a7c15)
	const hexDigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// StartSpan begins a span named name, parented to the context's
// current span if one exists, and returns a context carrying the new
// span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{Name: name, ID: newSpanID(), start: time.Now()}
	if p := SpanFromContext(ctx); p != nil {
		sp.Parent = p.ID
	}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// SpanFromContext returns the context's innermost span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// RequestID returns the innermost span's ID, or "" when the context
// carries no span — the correlation key structured logs attach to
// every record of one request.
func RequestID(ctx context.Context) string {
	if sp := SpanFromContext(ctx); sp != nil {
		return sp.ID
	}
	return ""
}

// Duration returns the time elapsed since the span started.
func (s *Span) Duration() time.Duration { return time.Since(s.start) }

// End finishes the span and returns its duration. Spans are not
// collected anywhere by default; feed the duration to a histogram
// and/or a SlowLogger.
func (s *Span) End() time.Duration { return time.Since(s.start) }

// SlowLogger logs spans that exceed a threshold, sampled so a storm of
// slow work cannot flood the log. The zero value is inert.
type SlowLogger struct {
	// Logger receives the records; nil disables logging.
	Logger *slog.Logger
	// Threshold is the duration above which a span counts as slow.
	Threshold time.Duration
	// Every samples the slow stream: only every Every-th slow span is
	// logged (<= 1 logs them all). The skipped count is attached to the
	// next logged record as "suppressed".
	Every int64

	slow       atomic.Int64
	suppressed atomic.Int64
}

// Observe reports whether the (name, id, d) observation was logged.
// Fast observations return immediately with a single branch.
func (sl *SlowLogger) Observe(name, id string, d time.Duration, attrs ...any) bool {
	if sl == nil || sl.Logger == nil || d < sl.Threshold {
		return false
	}
	n := sl.slow.Add(1)
	if sl.Every > 1 && n%sl.Every != 1 {
		sl.suppressed.Add(1)
		return false
	}
	sup := sl.suppressed.Swap(0)
	args := append([]any{
		slog.String("span", name),
		slog.String("request_id", id),
		slog.Duration("duration", d),
		slog.String("threshold", sl.Threshold.String()),
	}, attrs...)
	if sup > 0 {
		args = append(args, slog.Int64("suppressed", sup))
	}
	sl.Logger.Warn("slow span", args...)
	return true
}

// SlowCount returns how many slow spans have been observed (logged or
// suppressed).
func (sl *SlowLogger) SlowCount() int64 { return sl.slow.Load() }

// Sampler admits every Every-th call — the cheap gate in front of
// hot-path instrumentation (one atomic add per call). The zero value
// admits nothing; Every=1 admits everything.
type Sampler struct {
	every int64
	n     atomic.Int64
}

// NewSampler returns a sampler admitting one call in every. every <= 0
// disables sampling entirely (nothing admitted).
func NewSampler(every int) *Sampler { return &Sampler{every: int64(every)} }

// Sample reports whether this call is admitted.
func (s *Sampler) Sample() bool {
	if s == nil || s.every <= 0 {
		return false
	}
	if s.every == 1 {
		return true
	}
	return s.n.Add(1)%s.every == 0
}

// Every returns the sampling period (0 = disabled).
func (s *Sampler) Every() int64 {
	if s == nil {
		return 0
	}
	return s.every
}

// String renders the period for logs ("1/64").
func (s *Sampler) String() string {
	if s == nil || s.every <= 0 {
		return "off"
	}
	return "1/" + strconv.FormatInt(s.every, 10)
}
