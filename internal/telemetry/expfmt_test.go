package telemetry

import (
	"strings"
	"testing"
)

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "Total requests.", Label{"route", "/clean"}, Label{"code", "200"}).Add(3)
	r.Gauge("in_flight", "In flight.").Set(2)
	r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1}).Observe(0.05)
	r.GaugeFunc("cache_size", "Entries.", func() float64 { return 11 })

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	n, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("self-produced exposition does not validate: %v\n%s", err, out)
	}
	// 1 counter + 1 gauge + (2 buckets + Inf + sum + count) + 1 func = 8
	if n != 8 {
		t.Fatalf("samples = %d, want 8\n%s", n, out)
	}
	// Labels are sorted and code label is merged with le on buckets.
	if !strings.Contains(out, `requests_total{code="200",route="/clean"} 3`) {
		t.Errorf("counter sample missing or labels unsorted:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE latency_seconds histogram") {
		t.Errorf("TYPE comment missing:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "Has \\ and \n in help.",
		Label{"v", "a\"b\\c\nd"}).Inc()
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("escaped exposition does not validate: %v\n%s", err, out)
	}
	if !strings.Contains(out, `v="a\"b\\c\nd"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"9metric 1",                 // name starts with digit
		"m{x=nope} 1",               // unquoted label value
		`m{x="a} 1`,                 // unterminated quote
		"m one",                     // non-float value
		"# TYPE m flavor",           // unknown type
		`m{x="a"} 1 2 3`,            // trailing junk
		`m{1x="a"} 1`,               // bad label name
		"m 1.5 notatimestamp",       // bad timestamp
		"metric_total{} 1 xtrailer", // ditto with empty label block
	} {
		if _, err := ValidateExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ValidateExposition(%q) accepted garbage", bad)
		}
	}
	good := "# HELP m Help text.\n# TYPE m counter\nm{a=\"b\"} 1 1700000000\n\nm2 +Inf\n"
	n, err := ValidateExposition(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if n != 2 {
		t.Fatalf("samples = %d, want 2", n)
	}
}
