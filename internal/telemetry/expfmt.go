package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the exposition produced by
// WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// format v0.0.4: `# HELP` and `# TYPE` per family, families and series
// in sorted order, histograms as cumulative `_bucket{le=...}` plus
// `_sum` and `_count`. Scrape-time func collectors are evaluated
// outside the registry lock, so they may themselves use the registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fam))
	for _, f := range r.fam {
		fams = append(fams, f)
	}
	type snap struct {
		f   *family
		ser []*series
	}
	snaps := make([]snap, len(fams))
	for i, f := range fams {
		ser := make([]*series, 0, len(f.ser))
		for _, s := range f.ser {
			ser = append(ser, s)
		}
		snaps[i] = snap{f: f, ser: ser}
	}
	r.mu.RUnlock()

	sort.Slice(snaps, func(i, j int) bool { return snaps[i].f.name < snaps[j].f.name })
	bw := bufio.NewWriter(w)
	for _, sn := range snaps {
		sort.Slice(sn.ser, func(i, j int) bool { return sn.ser[i].key < sn.ser[j].key })
		if sn.f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", sn.f.name, escapeHelp(sn.f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", sn.f.name, sn.f.typ)
		for _, s := range sn.ser {
			writeSeries(bw, sn.f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w *bufio.Writer, f *family, s *series) {
	switch {
	case s.counter != nil:
		writeSample(w, f.name, s.key, formatInt(s.counter.Value()))
	case s.counterFunc != nil:
		writeSample(w, f.name, s.key, formatFloat(s.counterFunc()))
	case s.gauge != nil:
		writeSample(w, f.name, s.key, formatFloat(s.gauge.Value()))
	case s.gaugeFunc != nil:
		writeSample(w, f.name, s.key, formatFloat(s.gaugeFunc()))
	case s.histogram != nil:
		h := s.histogram
		var cum int64
		for i, ub := range h.upper {
			cum += h.counts[i].Load()
			writeSample(w, f.name+"_bucket", joinLabels(s.key, `le="`+formatFloat(ub)+`"`), formatInt(cum))
		}
		cum += h.counts[len(h.upper)].Load()
		writeSample(w, f.name+"_bucket", joinLabels(s.key, `le="+Inf"`), formatInt(cum))
		writeSample(w, f.name+"_sum", s.key, formatFloat(h.Sum()))
		writeSample(w, f.name+"_count", s.key, formatInt(cum))
	}
}

func writeSample(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func joinLabels(key, extra string) string {
	if key == "" {
		return extra
	}
	return key + "," + extra
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// ValidateExposition parses a Prometheus text-format exposition and
// returns the number of samples read. It checks comment structure,
// metric-name and label syntax, quote escaping, and that every value
// parses as a float — the checks `make metrics-check` and the ops
// tests run against a live /metrics scrape.
func ValidateExposition(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line); err != nil {
				return samples, fmt.Errorf("line %d: %w", lineno, err)
			}
			continue
		}
		if err := validateSample(line); err != nil {
			return samples, fmt.Errorf("line %d: %w", lineno, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

func validateComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) < 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func validateSample(line string) error {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 || !validMetricName(line[:i]) {
		return fmt.Errorf("bad metric name in %q", line)
	}
	rest := line[i:]
	if rest[0] == '{' {
		n, err := scanLabels(rest)
		if err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[n:]
	}
	rest = strings.TrimLeft(rest, " ")
	// value [timestamp]
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("want 'value [timestamp]', got %q", rest)
	}
	if !validFloat(fields[0]) {
		return fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return nil
}

// scanLabels validates a {name="value",...} block and returns its
// length in bytes, including both braces.
func scanLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) || !validLabelName(s[start:i]) {
			return 0, fmt.Errorf("bad label name")
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted")
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++ // skip escaped char
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validFloat(s string) bool {
	switch s {
	case "+Inf", "-Inf", "NaN", "Inf":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
