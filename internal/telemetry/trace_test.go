package telemetry

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanPropagation(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty context must have no request ID")
	}
	ctx, root := StartSpan(ctx, "request")
	if len(root.ID) != 16 {
		t.Fatalf("span ID %q: want 16 hex digits", root.ID)
	}
	if RequestID(ctx) != root.ID {
		t.Fatal("RequestID must return the innermost span ID")
	}
	ctx2, child := StartSpan(ctx, "stage")
	if child.Parent != root.ID {
		t.Fatalf("child.Parent = %q, want %q", child.Parent, root.ID)
	}
	if SpanFromContext(ctx2) != child {
		t.Fatal("context must carry the child span")
	}
	if SpanFromContext(ctx) != root {
		t.Fatal("parent context must still carry the root span")
	}
	if d := root.End(); d < 0 {
		t.Fatalf("duration %v negative", d)
	}
}

func TestSpanIDsUnique(t *testing.T) {
	const n = 5000
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				_, sp := StartSpan(context.Background(), "x")
				ids <- sp.ID
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate span ID %q", id)
		}
		seen[id] = true
	}
}

func TestSlowLoggerThresholdAndSampling(t *testing.T) {
	var buf bytes.Buffer
	sl := &SlowLogger{
		Logger:    slog.New(slog.NewTextHandler(&buf, nil)),
		Threshold: time.Millisecond,
		Every:     3,
	}
	if sl.Observe("fast", "id0", time.Microsecond) {
		t.Fatal("fast span must not be logged")
	}
	logged := 0
	for i := 0; i < 9; i++ {
		if sl.Observe("slow", "id1", 5*time.Millisecond) {
			logged++
		}
	}
	if logged != 3 {
		t.Fatalf("logged %d of 9 slow spans, want every 3rd = 3", logged)
	}
	if sl.SlowCount() != 9 {
		t.Fatalf("SlowCount = %d, want 9", sl.SlowCount())
	}
	out := buf.String()
	if !strings.Contains(out, "slow span") || !strings.Contains(out, "request_id=id1") {
		t.Fatalf("log output missing fields:\n%s", out)
	}
	if !strings.Contains(out, "suppressed=2") {
		t.Fatalf("suppressed count not attached:\n%s", out)
	}
	var nilSL *SlowLogger
	if nilSL.Observe("x", "y", time.Hour) {
		t.Fatal("nil SlowLogger must be inert")
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(4)
	admitted := 0
	for i := 0; i < 100; i++ {
		if s.Sample() {
			admitted++
		}
	}
	if admitted != 25 {
		t.Fatalf("admitted %d of 100 with period 4, want 25", admitted)
	}
	if !NewSampler(1).Sample() {
		t.Fatal("period 1 must admit everything")
	}
	if NewSampler(0).Sample() {
		t.Fatal("period 0 must admit nothing")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler must admit nothing")
	}
	if got := NewSampler(64).String(); got != "1/64" {
		t.Fatalf("String = %q", got)
	}
}
