package llunatic_test

import (
	"testing"

	"detective/internal/dataset"
	"detective/internal/llunatic"
	"detective/internal/relation"
)

// datasetNewUIS builds a small UIS truth table for FD-mining tests.
func datasetNewUIS(t *testing.T) *relation.Table {
	t.Helper()
	return dataset.NewUIS(5, 400).Truth
}

func table(rows ...[2]string) *relation.Table {
	tb := relation.NewTable(relation.NewSchema("R", "Country", "Capital"))
	for _, r := range rows {
		tb.Append(r[0], r[1])
	}
	return tb
}

var fd = []llunatic.FD{{LHS: []string{"Country"}, RHS: "Capital"}}

func TestRepairMajority(t *testing.T) {
	// The paper's intro example: country -> capital. The frequent value
	// wins; Shanghai is rewritten.
	tb := table(
		[2]string{"China", "Beijing"},
		[2]string{"China", "Beijing"},
		[2]string{"China", "Shanghai"},
	)
	res, err := llunatic.Repair(tb, fd)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Table.Cell(2, "Capital"); got != "Beijing" {
		t.Fatalf("Capital = %q, want Beijing", got)
	}
	if len(res.Changed) != 1 || res.Lluns != 0 {
		t.Fatalf("Changed=%v Lluns=%d", res.Changed, res.Lluns)
	}
	if llunatic.Violations(res.Table, fd) != 0 {
		t.Fatal("violations remain")
	}
}

func TestRepairTieSimilarity(t *testing.T) {
	// Frequency tie between a typo and another typo of the same value:
	// ED-based preference cannot decide between symmetric strings, but
	// with three variants the centroid wins.
	tb := table(
		[2]string{"France", "Paris"},
		[2]string{"France", "Pariss"},
		[2]string{"France", "Parris"},
	)
	res, err := llunatic.Repair(tb, fd)
	if err != nil {
		t.Fatal(err)
	}
	// All frequencies are 1; "Paris" minimizes total edit distance
	// (1+1=2 vs 1+2=3 for the others... Pariss<->Parris is 2).
	for i := 0; i < 3; i++ {
		if got := res.Table.Cell(i, "Capital"); got != "Paris" {
			t.Fatalf("row %d Capital = %q, want Paris", i, got)
		}
	}
}

func TestRepairLlunOnUnresolvableTie(t *testing.T) {
	tb := table(
		[2]string{"NL", "Amsterdam"},
		[2]string{"NL", "Rotterdam"},
	)
	res, err := llunatic.Repair(tb, fd)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric: frequency tie and ED tie -> both become lluns.
	if res.Lluns != 2 {
		t.Fatalf("Lluns = %d, want 2", res.Lluns)
	}
	for i := 0; i < 2; i++ {
		if got := res.Table.Cell(i, "Capital"); got != llunatic.Llun {
			t.Fatalf("row %d = %q, want llun", i, got)
		}
	}
	if llunatic.Violations(res.Table, fd) != 0 {
		t.Fatal("violations remain after lluns")
	}
}

func TestNoViolationNoChange(t *testing.T) {
	tb := table(
		[2]string{"China", "Beijing"},
		[2]string{"Japan", "Tokyo"},
	)
	res, err := llunatic.Repair(tb, fd)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 0 {
		t.Fatalf("Changed = %v", res.Changed)
	}
	// Input untouched.
	if tb.Cell(0, "Capital") != "Beijing" {
		t.Fatal("input mutated")
	}
}

func TestSingletonGroupsUntouched(t *testing.T) {
	// Errors without redundancy are invisible to FDs — the reason the
	// paper skips WebTables for IC-based repair.
	tb := table([2]string{"China", "Shanghai"})
	res, err := llunatic.Repair(tb, fd)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Table.Cell(0, "Capital"); got != "Shanghai" {
		t.Fatalf("Capital = %q, want untouched Shanghai", got)
	}
}

func TestMultipleFDsChase(t *testing.T) {
	schema := relation.NewSchema("R", "A", "B", "C")
	tb := relation.NewTable(schema)
	// A -> B and B -> C interact: fixing B creates a bigger B-group
	// for the second FD.
	tb.Append("a", "b", "c")
	tb.Append("a", "b", "c")
	tb.Append("a", "x", "d")
	fds := []llunatic.FD{
		{LHS: []string{"A"}, RHS: "B"},
		{LHS: []string{"B"}, RHS: "C"},
	}
	res, err := llunatic.Repair(tb, fds)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Table.Cell(2, "B"); got != "b" {
		t.Fatalf("B = %q", got)
	}
	if got := res.Table.Cell(2, "C"); got != "c" {
		t.Fatalf("C = %q (chase must re-run the second FD)", got)
	}
	if llunatic.Violations(res.Table, fds) != 0 {
		t.Fatal("violations remain")
	}
}

func TestLlunLHSDoesNotWitness(t *testing.T) {
	schema := relation.NewSchema("R", "A", "B")
	tb := relation.NewTable(schema)
	tb.Append(llunatic.Llun, "x")
	tb.Append(llunatic.Llun, "y")
	fds := []llunatic.FD{{LHS: []string{"A"}, RHS: "B"}}
	res, err := llunatic.Repair(tb, fds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 0 {
		t.Fatal("llun LHS must not group tuples")
	}
}

func TestFDValidation(t *testing.T) {
	schema := relation.NewSchema("R", "A", "B")
	bad := []llunatic.FD{
		{LHS: nil, RHS: "B"},
		{LHS: []string{"Z"}, RHS: "B"},
		{LHS: []string{"A"}, RHS: "Z"},
		{LHS: []string{"A"}, RHS: "A"},
	}
	tb := relation.NewTable(schema)
	for _, f := range bad {
		if _, err := llunatic.Repair(tb, []llunatic.FD{f}); err == nil {
			t.Errorf("FD %v: want error", f)
		}
	}
}

func TestMineFDs(t *testing.T) {
	schema := relation.NewSchema("R", "Zip", "City", "State", "Name")
	tb := relation.NewTable(schema)
	tb.Append("11111", "Springfield", "IL", "Ann")
	tb.Append("11111", "Springfield", "IL", "Bob")
	tb.Append("22222", "Shelbyville", "IL", "Ced")
	tb.Append("33333", "Ogdenville", "NT", "Dee")

	fds := llunatic.MineFDs(tb, 2)
	found := make(map[string]bool)
	for _, f := range fds {
		found[f.LHS[0]+">"+f.RHS] = true
	}
	if !found["Zip>City"] || !found["Zip>State"] {
		t.Errorf("missing zip FDs: %v", fds)
	}
	if !found["City>State"] {
		t.Errorf("missing City->State: %v", fds)
	}
	// Name is key-like (all distinct): no redundancy, no FDs from it.
	if found["Name>City"] {
		t.Errorf("key-like LHS mined: %v", fds)
	}
	// State does not determine City.
	if found["State>City"] {
		t.Errorf("non-functional FD mined: %v", fds)
	}
}

func TestMineFDsOnUISRecoversConfiguredFDs(t *testing.T) {
	// Mining the UIS truth recovers at least the two FDs the
	// experiments configure by hand.
	b := datasetNewUIS(t)
	fds := llunatic.MineFDs(b, 2)
	found := make(map[string]bool)
	for _, f := range fds {
		found[f.LHS[0]+">"+f.RHS] = true
	}
	if !found["Zip>City"] || !found["City>State"] {
		t.Fatalf("UIS mining missed configured FDs: %v", fds)
	}
}
