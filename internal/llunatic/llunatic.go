// Package llunatic implements an FD-based heuristic repair baseline
// modelled on the Llunatic data-cleaning framework (Geerts et al.,
// PVLDB 2013 — reference [17] of the paper) in the configuration the
// paper used for Exp-2: functional dependencies with the *frequency
// cost-manager*, repairing to the most frequent (then most similar)
// value within each violating group, and introducing lluns (labelled
// nulls / variables) when no preferred value exists. Cells repaired
// to a llun are scored 0.5 by the evaluation, the paper's "metric
// 0.5".
package llunatic

import (
	"fmt"
	"sort"

	"detective/internal/relation"
	"detective/internal/similarity"
)

// Llun is the placeholder written into cells repaired to a variable
// (an "unknown" in Llunatic's terminology).
const Llun = "⊥" // ⊥

// FD is a functional dependency LHS → RHS over one relation.
type FD struct {
	LHS []string
	RHS string
}

func (f FD) String() string { return fmt.Sprintf("%v -> %s", f.LHS, f.RHS) }

// Validate checks the FD against a schema.
func (f FD) Validate(schema *relation.Schema) error {
	if len(f.LHS) == 0 {
		return fmt.Errorf("llunatic: FD with empty LHS")
	}
	for _, a := range f.LHS {
		if !schema.Has(a) {
			return fmt.Errorf("llunatic: FD LHS attribute %q not in schema", a)
		}
		if a == f.RHS {
			return fmt.Errorf("llunatic: FD %v has RHS inside LHS", f)
		}
	}
	if !schema.Has(f.RHS) {
		return fmt.Errorf("llunatic: FD RHS attribute %q not in schema", f.RHS)
	}
	return nil
}

// Result reports a repair run.
type Result struct {
	Table *relation.Table
	// Changed lists the coordinates of rewritten cells.
	Changed [][2]int
	// Lluns is the number of cells set to the Llun variable.
	Lluns int
	// Rounds is the number of chase rounds executed.
	Rounds int
}

// maxRounds bounds the chase; interacting FDs converge in a couple of
// rounds on realistic data.
const maxRounds = 10

// Repair runs the FD chase with the frequency cost-manager over a
// copy of tb and returns the repaired table. Violating groups (same
// LHS, differing RHS) are repaired to the most frequent RHS value; a
// frequency tie falls back to the value with the smallest total edit
// distance to the group (the "most similar candidate"); a remaining
// tie becomes a llun.
func Repair(tb *relation.Table, fds []FD) (*Result, error) {
	for _, f := range fds {
		if err := f.Validate(tb.Schema); err != nil {
			return nil, err
		}
	}
	out := tb.Clone()
	res := &Result{Table: out}
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, f := range fds {
			if repairOne(out, f, res) {
				changed = true
			}
		}
		res.Rounds = round + 1
		if !changed {
			break
		}
	}
	return res, nil
}

// repairOne enforces one FD once; it reports whether any cell changed.
func repairOne(tb *relation.Table, f FD, res *Result) bool {
	lhsIdx := make([]int, len(f.LHS))
	for i, a := range f.LHS {
		lhsIdx[i] = tb.Schema.MustCol(a)
	}
	rhsIdx := tb.Schema.MustCol(f.RHS)

	groups := make(map[string][]int)
	for ti, tu := range tb.Tuples {
		key := ""
		skip := false
		for _, ci := range lhsIdx {
			v := tu.Values[ci]
			if v == Llun {
				skip = true // unknown LHS cannot witness a violation
				break
			}
			key += v + "\x00"
		}
		if skip {
			continue
		}
		groups[key] = append(groups[key], ti)
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	changed := false
	for _, k := range keys {
		rows := groups[k]
		freq := make(map[string]int)
		for _, ti := range rows {
			v := tb.Tuples[ti].Values[rhsIdx]
			if v != Llun {
				freq[v]++
			}
		}
		if len(freq) <= 1 {
			continue // no violation
		}
		preferred, isLlun := preferredValue(freq)
		for _, ti := range rows {
			cur := tb.Tuples[ti].Values[rhsIdx]
			want := preferred
			if isLlun {
				want = Llun
			}
			if cur == want {
				continue
			}
			tb.Tuples[ti].Values[rhsIdx] = want
			res.Changed = append(res.Changed, [2]int{ti, rhsIdx})
			if isLlun {
				res.Lluns++
			}
			changed = true
		}
	}
	return changed
}

// preferredValue applies the frequency cost-manager: highest
// frequency, then smallest total edit distance to the other observed
// values, then a llun if still ambiguous.
func preferredValue(freq map[string]int) (string, bool) {
	values := make([]string, 0, len(freq))
	for v := range freq {
		values = append(values, v)
	}
	sort.Strings(values)

	bestFreq := 0
	for _, n := range freq {
		if n > bestFreq {
			bestFreq = n
		}
	}
	var top []string
	for _, v := range values {
		if freq[v] == bestFreq {
			top = append(top, v)
		}
	}
	if len(top) == 1 {
		return top[0], false
	}
	// Frequency tie: most similar candidate (smallest total weighted
	// edit distance to all observed values).
	bestScore := -1
	var best []string
	for _, v := range top {
		score := 0
		for _, o := range values {
			score += freq[o] * similarity.ED(v, o)
		}
		if bestScore < 0 || score < bestScore {
			bestScore = score
			best = []string{v}
		} else if score == bestScore {
			best = append(best, v)
		}
	}
	if len(best) == 1 {
		return best[0], false
	}
	return "", true // still tied: repair to a variable
}

// Violations counts the FD-violating (tuple pair, FD) combinations in
// tb, a diagnostic used by tests and the experiment harness.
func Violations(tb *relation.Table, fds []FD) int {
	n := 0
	for _, f := range fds {
		lhsIdx := make([]int, len(f.LHS))
		for i, a := range f.LHS {
			lhsIdx[i] = tb.Schema.MustCol(a)
		}
		rhsIdx := tb.Schema.MustCol(f.RHS)
		seen := make(map[string]map[string]bool)
		for _, tu := range tb.Tuples {
			key := ""
			skip := false
			for _, ci := range lhsIdx {
				if tu.Values[ci] == Llun {
					skip = true
					break
				}
				key += tu.Values[ci] + "\x00"
			}
			if skip {
				continue
			}
			if seen[key] == nil {
				seen[key] = make(map[string]bool)
			}
			if v := tu.Values[rhsIdx]; v != Llun {
				seen[key][v] = true
			}
		}
		for _, vs := range seen {
			if len(vs) > 1 {
				n += len(vs) - 1
			}
		}
	}
	return n
}

// MineFDs discovers single-attribute functional dependencies A -> B
// that hold exactly on the given (assumed clean) table, skipping
// trivial key-like LHS attributes whose values are all distinct (they
// determine everything and provide no repair redundancy). It gives
// the baseline a data-driven way to obtain its constraints when none
// are specified.
func MineFDs(tb *relation.Table, minGroupSize int) []FD {
	if minGroupSize < 2 {
		minGroupSize = 2
	}
	var out []FD
	for _, lhs := range tb.Schema.Attrs {
		li := tb.Schema.MustCol(lhs)
		groups := make(map[string][]int)
		for ti, tu := range tb.Tuples {
			groups[tu.Values[li]] = append(groups[tu.Values[li]], ti)
		}
		// Redundancy check: some group must have at least minGroupSize
		// rows, otherwise violations can never be detected.
		redundant := false
		for _, rows := range groups {
			if len(rows) >= minGroupSize {
				redundant = true
				break
			}
		}
		if !redundant {
			continue
		}
		for _, rhs := range tb.Schema.Attrs {
			if rhs == lhs {
				continue
			}
			ri := tb.Schema.MustCol(rhs)
			holds := true
		groups:
			for _, rows := range groups {
				want := tb.Tuples[rows[0]].Values[ri]
				for _, ti := range rows[1:] {
					if tb.Tuples[ti].Values[ri] != want {
						holds = false
						break groups
					}
				}
			}
			if holds {
				out = append(out, FD{LHS: []string{lhs}, RHS: rhs})
			}
		}
	}
	return out
}
