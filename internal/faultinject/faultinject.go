// Package faultinject provides the chaos primitives used by the
// fault-tolerance tests: readers that deliver short reads or die
// mid-stream, writers that fail after a while, and a panic-injecting
// similarity hook that simulates a poisoned row deep inside the
// repair kernels. Production code never imports this package; it
// exists so every failure mode the server claims to survive has a
// test that actually produces it.
package faultinject

import (
	"errors"
	"io"

	"detective/internal/similarity"
)

// ErrInjected is the default error injected by Reader and Writer.
var ErrInjected = errors.New("faultinject: injected fault")

// Reader wraps an io.Reader with chaos: reads are truncated to at
// most Chunk bytes (forcing the consumer to cope with short reads),
// and after FailAfter total bytes every Read fails with Err. The zero
// limits disable the respective behaviour.
type Reader struct {
	R         io.Reader
	Chunk     int   // max bytes returned per Read; 0 = no limit
	FailAfter int64 // total bytes after which reads fail; 0 = never
	Err       error // error to inject; nil = ErrInjected

	n int64
}

func (r *Reader) Read(p []byte) (int, error) {
	if r.FailAfter > 0 && r.n >= r.FailAfter {
		if r.Err != nil {
			return 0, r.Err
		}
		return 0, ErrInjected
	}
	if r.Chunk > 0 && len(p) > r.Chunk {
		p = p[:r.Chunk]
	}
	if r.FailAfter > 0 {
		if left := r.FailAfter - r.n; int64(len(p)) > left {
			p = p[:left]
		}
	}
	n, err := r.R.Read(p)
	r.n += int64(n)
	return n, err
}

// Writer fails with Err once FailAfter successful Write calls have
// gone through; earlier writes are forwarded to W (or discarded when
// W is nil). It stands in for a closed client connection or a full
// disk on the output side.
type Writer struct {
	W         io.Writer
	FailAfter int   // number of Write calls to allow
	Err       error // error to inject; nil = ErrInjected

	calls int
}

func (w *Writer) Write(p []byte) (int, error) {
	if w.calls >= w.FailAfter {
		if w.Err != nil {
			return 0, w.Err
		}
		return 0, ErrInjected
	}
	w.calls++
	if w.W == nil {
		return len(p), nil
	}
	return w.W.Write(p)
}

// PanicOnValue installs a similarity match hook that panics whenever
// the query string equals trigger — the moral equivalent of one
// poisoned cell value crashing the matching kernel. It returns an
// uninstall function restoring the previous hook; callers must defer
// it.
func PanicOnValue(trigger string) (uninstall func()) {
	prev := similarity.SetMatchHook(func(q string) {
		if q == trigger {
			panic("faultinject: poisoned value " + trigger)
		}
	})
	return func() { similarity.SetMatchHook(prev) }
}
