package rules_test

import (
	"bytes"
	"testing"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// pathFixture builds the motivating scenario for negative paths
// (§II-C remark): Zip wrongly holds the zip code of the person's
// *birth* city, two hops away in the KB (Name -bornIn-> ?city
// -hasZip-> n).
func pathFixture() (*kb.Graph, *relation.Schema, *rules.DR) {
	g := kb.New()
	g.AddType("Ann", "person")
	g.AddType("Springfield", "city")
	g.AddType("Shelbyville", "city")
	g.AddType("11111", "zipcode")
	g.AddType("22222", "zipcode")
	g.AddType("33333", "zipcode")
	g.AddTriple("Ann", "livesIn", "Springfield")
	g.AddTriple("Ann", "bornIn", "Shelbyville")
	g.AddTriple("Springfield", "hasZip", "11111")
	g.AddTriple("Shelbyville", "hasZip", "22222")

	schema := relation.NewSchema("UIS", "Name", "City", "Zip")

	neg := rules.Node{Name: "n", Col: "Zip", Type: "zipcode", Sim: similarity.Eq}
	dr := &rules.DR{
		Name: "zip_path",
		Evidence: []rules.Node{
			{Name: "e1", Col: "Name", Type: "person", Sim: similarity.Eq},
			{Name: "e2", Col: "City", Type: "city", Sim: similarity.Eq},
		},
		Pos:  rules.Node{Name: "p", Col: "Zip", Type: "zipcode", Sim: similarity.EDK(1)},
		Neg:  &neg,
		Path: []rules.PathNode{{Name: "bc", Type: "city"}},
		Edges: []rules.Edge{
			{From: "e1", Rel: "livesIn", To: "e2"},
			{From: "e2", Rel: "hasZip", To: "p"},
			{From: "e1", Rel: "bornIn", To: "bc"},
			{From: "bc", Rel: "hasZip", To: "n"},
		},
	}
	return g, schema, dr
}

func TestPathRuleValidates(t *testing.T) {
	_, schema, dr := pathFixture()
	if err := dr.Validate(schema); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestPathRuleRejectsBadPaths(t *testing.T) {
	_, schema, dr := pathFixture()

	dup := *dr
	dup.Path = append([]rules.PathNode{{Name: "e1", Type: "city"}}, dr.Path...)
	if err := dup.Validate(schema); err == nil {
		t.Error("colliding path name: want error")
	}

	dangling := *dr
	dangling.Path = append([]rules.PathNode{{Name: "orphan", Type: "city"}}, dr.Path...)
	if err := dangling.Validate(schema); err == nil {
		t.Error("dangling path node: want error")
	}

	untyped := *dr
	untyped.Path = []rules.PathNode{{Name: "bc"}}
	if err := untyped.Validate(schema); err == nil {
		t.Error("untyped path node: want error")
	}
}

func TestPathRuleDetectsAndRepairs(t *testing.T) {
	g, schema, dr := pathFixture()
	cat := rules.NewCatalog(g)
	m, err := rules.NewMatcher(dr, cat, schema)
	if err != nil {
		t.Fatal(err)
	}

	// Zip = birth-city zip: detected through the path, repaired to the
	// residence zip.
	dirty := relation.NewTuple("Ann", "Springfield", "22222")
	out := m.Evaluate(dirty)
	if out.Kind != rules.Repair {
		t.Fatalf("Kind = %v, want Repair", out.Kind)
	}
	if len(out.Repairs) != 1 || out.Repairs[0] != "11111" {
		t.Fatalf("Repairs = %v, want [11111]", out.Repairs)
	}

	// Correct zip: proof positive.
	clean := relation.NewTuple("Ann", "Springfield", "11111")
	if out := m.Evaluate(clean); out.Kind != rules.Positive {
		t.Fatalf("clean tuple: %v, want Positive", out.Kind)
	}

	// A random valid zip unrelated to the person: the negative path
	// does not match, so the rule stays conservative.
	random := relation.NewTuple("Ann", "Springfield", "33333")
	if out := m.Evaluate(random); out.Kind != rules.NoMatch {
		t.Fatalf("random zip: %v, want NoMatch", out.Kind)
	}

	// A typo'd zip within ED 1 normalizes via the positive side.
	typo := relation.NewTuple("Ann", "Springfield", "11112")
	out = m.Evaluate(typo)
	if out.Kind != rules.Repair || out.Repairs[0] != "11111" {
		t.Fatalf("typo zip: %+v", out)
	}
}

func TestPathDoesNotConstrainPositiveSide(t *testing.T) {
	// Remove Ann's bornIn fact: the negative path cannot match, but
	// proof positive must be unaffected (the path belongs to the
	// negative side only).
	g := kb.New()
	g.AddType("Ann", "person")
	g.AddType("Springfield", "city")
	g.AddType("11111", "zipcode")
	g.AddTriple("Ann", "livesIn", "Springfield")
	g.AddTriple("Springfield", "hasZip", "11111")

	_, schema, dr := pathFixture()
	cat := rules.NewCatalog(g)
	m, err := rules.NewMatcher(dr, cat, schema)
	if err != nil {
		t.Fatal(err)
	}
	clean := relation.NewTuple("Ann", "Springfield", "11111")
	if out := m.Evaluate(clean); out.Kind != rules.Positive {
		t.Fatalf("positive side constrained by negative path: %v", out.Kind)
	}
}

func TestPathRuleBasicAndFastAgree(t *testing.T) {
	g, schema, dr := pathFixture()
	e, err := repair.NewEngine([]*rules.DR{dr}, g, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, vals := range [][]string{
		{"Ann", "Springfield", "22222"},
		{"Ann", "Springfield", "11111"},
		{"Ann", "Springfield", "33333"},
		{"Ann", "Springfield", "11112"},
		{"Bob", "Springfield", "11111"}, // unknown person
	} {
		tu := relation.NewTuple(vals...)
		b := e.BasicRepair(tu)
		f := e.FastRepair(tu)
		if !b.EqualMarked(f) {
			t.Errorf("%v: basic %v != fast %v", vals, b, f)
		}
	}
}

func TestPathRuleTextRoundTrip(t *testing.T) {
	g, schema, dr := pathFixture()
	var buf bytes.Buffer
	if err := rules.EncodeRules(&buf, []*rules.DR{dr}); err != nil {
		t.Fatal(err)
	}
	parsed, err := rules.ParseRules(&buf)
	if err != nil {
		t.Fatalf("ParseRules: %v\n%s", err, buf.String())
	}
	if len(parsed) != 1 {
		t.Fatalf("parsed %d rules", len(parsed))
	}
	got := parsed[0]
	if len(got.Path) != 1 || got.Path[0] != (rules.PathNode{Name: "bc", Type: "city"}) {
		t.Fatalf("Path = %v", got.Path)
	}
	if err := got.Validate(schema); err != nil {
		t.Fatal(err)
	}
	// Behaviour survives the round trip.
	cat := rules.NewCatalog(g)
	m, err := rules.NewMatcher(got, cat, schema)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Evaluate(relation.NewTuple("Ann", "Springfield", "22222"))
	if out.Kind != rules.Repair || out.Repairs[0] != "11111" {
		t.Fatalf("parsed rule outcome: %+v", out)
	}
}

func TestPathRuleParseRejectsColumn(t *testing.T) {
	in := "rule r {\n node a col=A type=T\n pos p col=B type=T\n path x col=C type=T\n edge a r p\n}"
	if _, err := rules.ParseRules(bytes.NewReader([]byte(in))); err == nil {
		t.Fatal("path node with col=: want parse error")
	}
}
