package rules_test

import (
	"fmt"
	"reflect"
	"testing"

	"detective/internal/dataset"
	"detective/internal/kb"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// TestCandidateCacheHits: repeated lookups of the same (type, sim,
// value) must be served from the cache and return the same candidate
// list as the uncached scan.
func TestCandidateCacheHits(t *testing.T) {
	ex := dataset.NewPaperExample()
	cat := rules.NewCatalog(ex.KB)
	specs := []similarity.Spec{similarity.Eq, similarity.EDK(2), similarity.JaccardAtLeast(0.5)}
	values := []string{"Avram Hershko", "Hershko", "Haifa", "nope", ""}
	for _, sp := range specs {
		for _, v := range values {
			first := cat.Candidates("Nobel laureates in Chemistry", sp, v)
			again := cat.Candidates("Nobel laureates in Chemistry", sp, v)
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("%v %q: cached result %v != first %v", sp, v, again, first)
			}
			want := cat.CandidatesScan("Nobel laureates in Chemistry", sp, v)
			if !sameIDSet(first, want) {
				t.Fatalf("%v %q: cached %v, scan %v", sp, v, first, want)
			}
		}
	}
	hits, misses, size := cat.CacheStats()
	if hits == 0 {
		t.Error("no cache hits recorded")
	}
	if misses == 0 || size == 0 {
		t.Errorf("misses=%d size=%d, want both > 0", misses, size)
	}
}

// TestCandidateCacheInvalidation: growing the KB after lookups must
// not serve stale candidate lists — the generation check watches
// kb.Graph.Generation, which moves on every mutation (including
// type-only additions, which don't change the triple count).
func TestCandidateCacheInvalidation(t *testing.T) {
	g := kb.New()
	g.AddType("Haifa", "city")
	cat := rules.NewCatalog(g)

	if got := cat.Candidates("city", similarity.Eq, "Karcag"); len(got) != 0 {
		t.Fatalf("Candidates(Karcag) = %v before it exists", got)
	}
	g.AddType("Karcag", "city")
	if got := cat.Candidates("city", similarity.Eq, "Karcag"); len(got) != 1 {
		t.Fatalf("Candidates(Karcag) = %v after adding it (stale cache?)", got)
	}
}

// TestCandidateCacheDisabled: SetCacheSize(0) must fall back to
// direct index lookups with identical results.
func TestCandidateCacheDisabled(t *testing.T) {
	ex := dataset.NewPaperExample()
	cached := rules.NewCatalog(ex.KB)
	uncached := rules.NewCatalog(ex.KB)
	uncached.SetCacheSize(0)
	for _, v := range []string{"Avram Hershko", "Technion", "bogus"} {
		a := cached.Candidates("Nobel laureates in Chemistry", similarity.EDK(1), v)
		b := uncached.Candidates("Nobel laureates in Chemistry", similarity.EDK(1), v)
		if !sameIDSet(a, b) {
			t.Fatalf("%q: cached %v, uncached %v", v, a, b)
		}
	}
	if hits, _, size := uncached.CacheStats(); hits != 0 || size != 0 {
		t.Errorf("disabled cache recorded hits=%d size=%d", hits, size)
	}
}

// TestCandidateCacheBound: the cache must respect its size bound
// under a stream of distinct keys instead of growing without limit.
func TestCandidateCacheBound(t *testing.T) {
	ex := dataset.NewPaperExample()
	cat := rules.NewCatalog(ex.KB)
	const bound = 256
	cat.SetCacheSize(bound)
	for i := 0; i < 50*bound; i++ {
		cat.Candidates("Nobel laureates in Chemistry", similarity.Eq, fmt.Sprintf("value-%d", i))
	}
	if _, _, size := cat.CacheStats(); size > 2*bound {
		t.Errorf("cache size %d exceeds bound %d by more than slack", size, bound)
	}
}

// sameIDSet compares candidate lists as sets (retrieval order differs
// between the indexed and scanning paths).
func sameIDSet(a, b []kb.ID) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[kb.ID]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	for _, x := range b {
		if !in[x] {
			return false
		}
	}
	return true
}
