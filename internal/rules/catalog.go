package rules

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"detective/internal/kb"
	"detective/internal/similarity"
)

// MaxEDThreshold is the largest edit-distance threshold rule nodes may
// use. The per-class signature indexes are built once with this bound
// (PASS-JOIN segments are fixed at index-build time).
const MaxEDThreshold = 3

// DefaultCandidateCacheSize is the total number of candidate lists the
// cross-tuple cache retains before evicting (spread across its
// shards). Real dirty tables repeat values heavily (§V's Nobel/UIS/
// WebTables workloads), so even a modest bound absorbs most lookups.
const DefaultCandidateCacheSize = 1 << 16

// candShards is the number of cache shards; a power of two so the
// shard pick is a mask. Sharding keeps the read-mostly cache from
// serializing RepairTableParallel workers on one lock.
const candShards = 64

// candKey identifies one candidate retrieval: (class ID, sim spec,
// value). Spec is a small comparable struct, so the key hashes without
// any string assembly.
type candKey struct {
	cls   kb.ID
	spec  similarity.Spec
	value string
}

// shard picks the cache shard for the key (FNV-1a over the value,
// folded with the class and spec).
func (k candKey) shard() uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(k.value); i++ {
		h ^= uint32(k.value[i])
		h *= 16777619
	}
	h ^= uint32(k.cls) * 2654435761
	h ^= uint32(k.spec.Op)<<24 ^ uint32(k.spec.K)<<16
	h ^= uint32(math.Float64bits(k.spec.Tau) >> 32)
	return h & (candShards - 1)
}

type candShard struct {
	mu sync.RWMutex
	m  map[candKey][]kb.ID
}

// Catalog answers "which KB instances of class T match value v under
// sim?" — the instance-matching primitive of §IV-B(2). It lazily
// builds one signature-based StringIndex per KB class, shared by all
// rules and all tuples, so similarity matching never scans a class
// extent.
//
// In front of the indexes sits a sharded, read-mostly *candidate
// cache* keyed by (class, sim, value): the repeated values that
// dominate real dirty tables hit the cache instead of re-running
// q-gram/PASS-JOIN retrieval. The cache is bounded (SetCacheSize) and
// generation-checked against the KB (kb.Graph.Generation) — the KB is
// append-only, so a moved generation means new instances may exist,
// and both the cache and the class indexes are dropped before the
// next lookup. Freeze the KB after loading (kb.Graph.Freeze) and the
// generation never moves again, making all catalog reads safe for
// concurrent use.
type Catalog struct {
	KB *kb.Graph

	mu  sync.RWMutex
	idx map[kb.ID]*similarity.StringIndex

	cacheCap     int // per-shard entry bound; 0 disables the cache
	gen          atomic.Int64
	shards       [candShards]candShard
	hits, misses atomic.Int64
}

// NewCatalog creates a catalog over g with the default candidate
// cache size.
func NewCatalog(g *kb.Graph) *Catalog {
	c := &Catalog{KB: g, idx: make(map[kb.ID]*similarity.StringIndex)}
	c.cacheCap = DefaultCandidateCacheSize / candShards
	c.gen.Store(-1)
	return c
}

// SetCacheSize re-bounds the candidate cache to about n entries in
// total; n <= 0 disables caching entirely. Existing entries are
// dropped.
func (c *Catalog) SetCacheSize(n int) {
	if n <= 0 {
		c.cacheCap = 0
	} else if n < candShards {
		c.cacheCap = 1
	} else {
		c.cacheCap = n / candShards
	}
	c.Invalidate()
}

// CacheStats reports candidate-cache hits, misses, and the current
// number of cached lists.
func (c *Catalog) CacheStats() (hits, misses int64, size int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		size += len(sh.m)
		sh.mu.RUnlock()
	}
	return c.hits.Load(), c.misses.Load(), size
}

// IndexStats aggregates hit/miss/size accounting over every built
// per-class signature index (similarity.StringIndex.Stats): hits are
// lookups that found at least one candidate, size is the total number
// of indexed instance names. Together with CacheStats this makes both
// caching layers — the candidate cache in front, the signature
// indexes behind it — observable through the same telemetry registry.
func (c *Catalog) IndexStats() (hits, misses int64, size int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, ix := range c.idx {
		h, m, s := ix.Stats()
		hits += h
		misses += m
		size += s
	}
	return hits, misses, size
}

// Invalidate drops the candidate cache and the per-class signature
// indexes. Lookups rebuild both lazily. Call it after mutating the KB
// (checkGen also does this automatically by watching the KB
// generation).
func (c *Catalog) Invalidate() {
	c.mu.Lock()
	c.idx = make(map[kb.ID]*similarity.StringIndex)
	c.mu.Unlock()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
}

// checkGen invalidates cached state when the KB has grown since the
// last lookup. The KB is append-only and counts every content
// mutation (kb.Graph.Generation); after loading finishes and Freeze is
// called the generation is stable, and this is a single atomic load
// per lookup.
func (c *Catalog) checkGen() {
	n := c.KB.Generation()
	if c.gen.Load() == n {
		return
	}
	c.Invalidate()
	c.gen.Store(n)
}

// classIndex returns (building on first use) the signature index over
// the instance names of cls. It is safe for concurrent use; the KB
// must not be mutated once lookups begin.
func (c *Catalog) classIndex(cls kb.ID) *similarity.StringIndex {
	c.mu.RLock()
	ix, ok := c.idx[cls]
	c.mu.RUnlock()
	if ok {
		return ix
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ix, ok := c.idx[cls]; ok {
		return ix
	}
	ix = similarity.NewStringIndex(MaxEDThreshold)
	for _, inst := range c.KB.InstancesOf(cls) {
		ix.Add(c.KB.Name(inst), int32(inst))
	}
	c.idx[cls] = ix
	return ix
}

// Candidates returns the instances of class typeName whose names match
// value under spec. A type unknown to the KB yields no candidates.
// The returned slice may be shared with the cache and other callers —
// treat it as read-only. Edit-distance specs beyond MaxEDThreshold are
// rejected at rule validation time; reaching here with one is a
// programming error.
func (c *Catalog) Candidates(typeName string, spec similarity.Spec, value string) []kb.ID {
	if spec.Op == similarity.OpED && spec.K > MaxEDThreshold {
		panic(fmt.Sprintf("rules: ED threshold %d exceeds MaxEDThreshold %d", spec.K, MaxEDThreshold))
	}
	cls := c.KB.Lookup(typeName)
	if cls == kb.Invalid {
		return nil
	}
	if c.cacheCap == 0 {
		return c.retrieve(cls, spec, value)
	}
	c.checkGen()
	key := candKey{cls: cls, spec: spec, value: value}
	sh := &c.shards[key.shard()]
	sh.mu.RLock()
	out, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return out
	}
	c.misses.Add(1)
	out = c.retrieve(cls, spec, value)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[candKey][]kb.ID, c.cacheCap)
	}
	if len(sh.m) >= c.cacheCap {
		// The shard is full: evict an arbitrary eighth. Map iteration
		// order is effectively random, which is eviction enough for a
		// cache whose working set is the table's value distribution.
		drop := c.cacheCap/8 + 1
		for k := range sh.m {
			delete(sh.m, k)
			if drop--; drop == 0 {
				break
			}
		}
	}
	sh.m[key] = out
	sh.mu.Unlock()
	return out
}

// retrieve runs the underlying signature-index lookup.
func (c *Catalog) retrieve(cls kb.ID, spec similarity.Spec, value string) []kb.ID {
	raw := c.classIndex(cls).Lookup(spec, value)
	if len(raw) == 0 {
		return nil
	}
	out := make([]kb.ID, len(raw))
	for i, p := range raw {
		out[i] = kb.ID(p)
	}
	return out
}

// HasCandidate reports whether Candidates would be non-empty; it is
// the node-level check memoized by the fast repair engine.
func (c *Catalog) HasCandidate(typeName string, spec similarity.Spec, value string) bool {
	return len(c.Candidates(typeName, spec, value)) > 0
}

// CandidatesScan is the unindexed counterpart of Candidates: it
// enumerates every instance of the class and tests the matching
// operation directly, the O(|C|·|X|) per-node cost the paper charges
// to the basic repair algorithm (§IV-A complexity analysis). The fast
// repair algorithm replaces this with the signature indexes. It is
// deliberately uncached: it models the basic algorithm's cost, and
// caching it would corrupt the ablation contrast.
func (c *Catalog) CandidatesScan(typeName string, spec similarity.Spec, value string) []kb.ID {
	cls := c.KB.Lookup(typeName)
	if cls == kb.Invalid {
		return nil
	}
	var out []kb.ID
	for _, inst := range c.KB.InstancesOf(cls) {
		if spec.Match(value, c.KB.Name(inst)) {
			out = append(out, inst)
		}
	}
	return out
}

// Lookup retrieves candidates with or without the signature indexes.
func (c *Catalog) Lookup(typeName string, spec similarity.Spec, value string, scan bool) []kb.ID {
	if scan {
		return c.CandidatesScan(typeName, spec, value)
	}
	return c.Candidates(typeName, spec, value)
}
