package rules

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"detective/internal/kb"
	"detective/internal/similarity"
)

// MaxEDThreshold is the largest edit-distance threshold rule nodes may
// use. The per-class signature indexes are built once with this bound
// (PASS-JOIN segments are fixed at index-build time).
const MaxEDThreshold = 3

// DefaultCandidateCacheSize is the total number of candidate lists the
// cross-tuple cache retains before evicting (spread across its
// shards). Real dirty tables repeat values heavily (§V's Nobel/UIS/
// WebTables workloads), so even a modest bound absorbs most lookups.
const DefaultCandidateCacheSize = 1 << 16

// candShards is the number of cache shards; a power of two so the
// shard pick is a mask. Sharding keeps the read-mostly cache from
// serializing RepairTableParallel workers on one lock.
const candShards = 64

// candKey identifies one candidate retrieval: (class ID, sim spec,
// value). Spec is a small comparable struct, so the key hashes without
// any string assembly.
type candKey struct {
	cls   kb.ID
	spec  similarity.Spec
	value string
}

// shard picks the cache shard for the key (FNV-1a over the value,
// folded with the class and spec).
func (k candKey) shard() uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(k.value); i++ {
		h ^= uint32(k.value[i])
		h *= 16777619
	}
	h ^= uint32(k.cls) * 2654435761
	h ^= uint32(k.spec.Op)<<24 ^ uint32(k.spec.K)<<16
	h ^= uint32(math.Float64bits(k.spec.Tau) >> 32)
	return h & (candShards - 1)
}

// candEntry is one cached candidate list, tagged with the generation
// of the graph it was computed against. A hit requires the tag to
// match the reader's pinned graph, so entries inserted by stragglers
// still running on a pre-swap graph can never be served against the
// post-swap one (and vice versa) — no locking between swap and insert
// is needed for correctness.
type candEntry struct {
	gen int64
	ids []kb.ID
}

type candShard struct {
	mu sync.RWMutex
	m  map[candKey]candEntry
}

// idxKey identifies one per-class signature index: indexes are keyed
// by (class, graph generation) because class IDs are only meaningful
// within one graph.
type idxKey struct {
	cls kb.ID
	gen int64
}

// Catalog answers "which KB instances of class T match value v under
// sim?" — the instance-matching primitive of §IV-B(2). It lazily
// builds one signature-based StringIndex per KB class, shared by all
// rules and all tuples, so similarity matching never scans a class
// extent.
//
// In front of the indexes sits a sharded, read-mostly *candidate
// cache* keyed by (class, sim, value): the repeated values that
// dominate real dirty tables hit the cache instead of re-running
// q-gram/PASS-JOIN retrieval.
//
// The catalog reads its KB through a kb.Store, so the graph can be
// hot-swapped while repairs are streaming. Correctness across a swap
// rests on generations (kb.Store.Swap stamps each incoming graph
// strictly above its predecessor): cache entries are tagged with the
// generation they were computed under and only hit when the tag
// matches the caller's pinned graph, and signature indexes are keyed
// by (class, generation) with the two most recent generations
// retained — in-flight tuples that pinned the old graph keep full
// index service through the swap window. Callers doing multi-step
// work pin a graph once (Graph()) and use the ...On variants.
type Catalog struct {
	store *kb.Store

	mu  sync.RWMutex
	idx map[idxKey]*similarity.StringIndex

	cacheCap     int // per-shard entry bound; 0 disables the cache
	gen          atomic.Int64
	shards       [candShards]candShard
	hits, misses atomic.Int64
}

// NewCatalog creates a catalog over a fixed graph g with the default
// candidate cache size. For hot-swappable serving use NewCatalogStore.
func NewCatalog(g *kb.Graph) *Catalog {
	return NewCatalogStore(kb.NewStore(g))
}

// NewCatalogStore creates a catalog reading the current graph of s
// with the default candidate cache size.
func NewCatalogStore(s *kb.Store) *Catalog {
	c := &Catalog{store: s, idx: make(map[idxKey]*similarity.StringIndex)}
	c.cacheCap = DefaultCandidateCacheSize / candShards
	c.gen.Store(-1)
	return c
}

// Graph returns the store's current graph. Multi-step callers pin it
// once and pass it to the ...On variants so the whole step sees one
// graph.
func (c *Catalog) Graph() *kb.Graph { return c.store.Graph() }

// Store returns the underlying swappable KB handle.
func (c *Catalog) Store() *kb.Store { return c.store }

// SetCacheSize re-bounds the candidate cache to about n entries in
// total; n <= 0 disables caching entirely. Existing entries are
// dropped.
func (c *Catalog) SetCacheSize(n int) {
	if n <= 0 {
		c.cacheCap = 0
	} else if n < candShards {
		c.cacheCap = 1
	} else {
		c.cacheCap = n / candShards
	}
	c.Invalidate()
}

// CacheStats reports candidate-cache hits, misses, and the current
// number of cached lists.
func (c *Catalog) CacheStats() (hits, misses int64, size int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		size += len(sh.m)
		sh.mu.RUnlock()
	}
	return c.hits.Load(), c.misses.Load(), size
}

// IndexStats aggregates hit/miss/size accounting over every built
// per-class signature index (similarity.StringIndex.Stats): hits are
// lookups that found at least one candidate, size is the total number
// of indexed instance names. Together with CacheStats this makes both
// caching layers — the candidate cache in front, the signature
// indexes behind it — observable through the same telemetry registry.
func (c *Catalog) IndexStats() (hits, misses int64, size int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, ix := range c.idx {
		h, m, s := ix.Stats()
		hits += h
		misses += m
		size += s
	}
	return hits, misses, size
}

// Invalidate drops the candidate cache and the per-class signature
// indexes. Lookups rebuild both lazily. It is not needed around KB
// swaps or mutations — advance handles those via generations — but
// remains useful to release memory.
func (c *Catalog) Invalidate() {
	c.mu.Lock()
	c.idx = make(map[idxKey]*similarity.StringIndex)
	c.mu.Unlock()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
}

// advance notes that a reader is operating at generation gen. When gen
// moves past the highest generation seen so far (a KB swap or
// mutation), the candidate-cache shards are cleared — their
// generation tags already prevent stale hits, clearing just frees the
// memory promptly — and signature indexes older than the previous
// generation are pruned, keeping at most the last two generations
// alive for stragglers. Readers on older graphs (gen below current)
// advance nothing.
func (c *Catalog) advance(gen int64) {
	cur := c.gen.Load()
	if gen <= cur {
		return
	}
	if !c.gen.CompareAndSwap(cur, gen) {
		return // someone else advanced concurrently
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
	c.mu.Lock()
	for k := range c.idx {
		if k.gen != gen && k.gen != cur {
			delete(c.idx, k)
		}
	}
	c.mu.Unlock()
}

// classIndex returns (building on first use) the signature index over
// the instance names of cls in g. Indexes are per-generation, so
// concurrent readers on pre- and post-swap graphs each get an index
// built from their own graph.
func (c *Catalog) classIndex(g *kb.Graph, cls kb.ID) *similarity.StringIndex {
	key := idxKey{cls: cls, gen: g.Generation()}
	c.mu.RLock()
	ix, ok := c.idx[key]
	c.mu.RUnlock()
	if ok {
		return ix
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ix, ok := c.idx[key]; ok {
		return ix
	}
	ix = similarity.NewStringIndex(MaxEDThreshold)
	for _, inst := range g.InstancesOf(cls) {
		ix.Add(g.Name(inst), int32(inst))
	}
	c.idx[key] = ix
	return ix
}

// Candidates returns the instances of class typeName whose names match
// value under spec, evaluated against the store's current graph. See
// CandidatesOn for the pinned-graph variant multi-step callers need.
func (c *Catalog) Candidates(typeName string, spec similarity.Spec, value string) []kb.ID {
	return c.CandidatesOn(c.store.Graph(), typeName, spec, value)
}

// CandidatesOn is Candidates against an explicitly pinned graph. A
// type unknown to the KB yields no candidates. The returned slice may
// be shared with the cache and other callers — treat it as read-only.
// Edit-distance specs beyond MaxEDThreshold are rejected at rule
// validation time; reaching here with one is a programming error.
func (c *Catalog) CandidatesOn(g *kb.Graph, typeName string, spec similarity.Spec, value string) []kb.ID {
	if spec.Op == similarity.OpED && spec.K > MaxEDThreshold {
		panic(fmt.Sprintf("rules: ED threshold %d exceeds MaxEDThreshold %d", spec.K, MaxEDThreshold))
	}
	cls := g.Lookup(typeName)
	if cls == kb.Invalid {
		return nil
	}
	if c.cacheCap == 0 {
		return c.retrieve(g, cls, spec, value)
	}
	gen := g.Generation()
	c.advance(gen)
	key := candKey{cls: cls, spec: spec, value: value}
	sh := &c.shards[key.shard()]
	sh.mu.RLock()
	e, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok && e.gen == gen {
		c.hits.Add(1)
		return e.ids
	}
	c.misses.Add(1)
	out := c.retrieve(g, cls, spec, value)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[candKey]candEntry, c.cacheCap)
	}
	if len(sh.m) >= c.cacheCap {
		// The shard is full: evict an arbitrary eighth. Map iteration
		// order is effectively random, which is eviction enough for a
		// cache whose working set is the table's value distribution.
		drop := c.cacheCap/8 + 1
		for k := range sh.m {
			delete(sh.m, k)
			if drop--; drop == 0 {
				break
			}
		}
	}
	sh.m[key] = candEntry{gen: gen, ids: out}
	sh.mu.Unlock()
	return out
}

// retrieve runs the underlying signature-index lookup on g.
func (c *Catalog) retrieve(g *kb.Graph, cls kb.ID, spec similarity.Spec, value string) []kb.ID {
	raw := c.classIndex(g, cls).Lookup(spec, value)
	if len(raw) == 0 {
		return nil
	}
	out := make([]kb.ID, len(raw))
	for i, p := range raw {
		out[i] = kb.ID(p)
	}
	return out
}

// HasCandidate reports whether Candidates would be non-empty; it is
// the node-level check memoized by the fast repair engine.
func (c *Catalog) HasCandidate(typeName string, spec similarity.Spec, value string) bool {
	return len(c.Candidates(typeName, spec, value)) > 0
}

// HasCandidateOn is HasCandidate against a pinned graph.
func (c *Catalog) HasCandidateOn(g *kb.Graph, typeName string, spec similarity.Spec, value string) bool {
	return len(c.CandidatesOn(g, typeName, spec, value)) > 0
}

// CandidatesScan is the unindexed counterpart of Candidates: it
// enumerates every instance of the class and tests the matching
// operation directly, the O(|C|·|X|) per-node cost the paper charges
// to the basic repair algorithm (§IV-A complexity analysis). The fast
// repair algorithm replaces this with the signature indexes. It is
// deliberately uncached: it models the basic algorithm's cost, and
// caching it would corrupt the ablation contrast.
func (c *Catalog) CandidatesScan(typeName string, spec similarity.Spec, value string) []kb.ID {
	return c.CandidatesScanOn(c.store.Graph(), typeName, spec, value)
}

// CandidatesScanOn is CandidatesScan against a pinned graph.
func (c *Catalog) CandidatesScanOn(g *kb.Graph, typeName string, spec similarity.Spec, value string) []kb.ID {
	cls := g.Lookup(typeName)
	if cls == kb.Invalid {
		return nil
	}
	var out []kb.ID
	for _, inst := range g.InstancesOf(cls) {
		if spec.Match(value, g.Name(inst)) {
			out = append(out, inst)
		}
	}
	return out
}

// Lookup retrieves candidates with or without the signature indexes.
func (c *Catalog) Lookup(typeName string, spec similarity.Spec, value string, scan bool) []kb.ID {
	return c.LookupOn(c.store.Graph(), typeName, spec, value, scan)
}

// LookupOn is Lookup against a pinned graph.
func (c *Catalog) LookupOn(g *kb.Graph, typeName string, spec similarity.Spec, value string, scan bool) []kb.ID {
	if scan {
		return c.CandidatesScanOn(g, typeName, spec, value)
	}
	return c.CandidatesOn(g, typeName, spec, value)
}
