package rules

import (
	"fmt"
	"sync"

	"detective/internal/kb"
	"detective/internal/similarity"
)

// MaxEDThreshold is the largest edit-distance threshold rule nodes may
// use. The per-class signature indexes are built once with this bound
// (PASS-JOIN segments are fixed at index-build time).
const MaxEDThreshold = 3

// Catalog answers "which KB instances of class T match value v under
// sim?" — the instance-matching primitive of §IV-B(2). It lazily
// builds one signature-based StringIndex per KB class, shared by all
// rules and all tuples, so similarity matching never scans a class
// extent.
type Catalog struct {
	KB *kb.Graph

	mu  sync.RWMutex
	idx map[kb.ID]*similarity.StringIndex
}

// NewCatalog creates a catalog over g.
func NewCatalog(g *kb.Graph) *Catalog {
	return &Catalog{KB: g, idx: make(map[kb.ID]*similarity.StringIndex)}
}

// classIndex returns (building on first use) the signature index over
// the instance names of cls. It is safe for concurrent use; the KB
// must not be mutated once lookups begin.
func (c *Catalog) classIndex(cls kb.ID) *similarity.StringIndex {
	c.mu.RLock()
	ix, ok := c.idx[cls]
	c.mu.RUnlock()
	if ok {
		return ix
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ix, ok := c.idx[cls]; ok {
		return ix
	}
	ix = similarity.NewStringIndex(MaxEDThreshold)
	for _, inst := range c.KB.InstancesOf(cls) {
		ix.Add(c.KB.Name(inst), int32(inst))
	}
	c.idx[cls] = ix
	return ix
}

// Candidates returns the instances of class typeName whose names match
// value under spec. A type unknown to the KB yields no candidates.
// Edit-distance specs beyond MaxEDThreshold are rejected at rule
// validation time; reaching here with one is a programming error.
func (c *Catalog) Candidates(typeName string, spec similarity.Spec, value string) []kb.ID {
	if spec.Op == similarity.OpED && spec.K > MaxEDThreshold {
		panic(fmt.Sprintf("rules: ED threshold %d exceeds MaxEDThreshold %d", spec.K, MaxEDThreshold))
	}
	cls := c.KB.Lookup(typeName)
	if cls == kb.Invalid {
		return nil
	}
	raw := c.classIndex(cls).Lookup(spec, value)
	if len(raw) == 0 {
		return nil
	}
	out := make([]kb.ID, len(raw))
	for i, p := range raw {
		out[i] = kb.ID(p)
	}
	return out
}

// HasCandidate reports whether Candidates would be non-empty; it is
// the node-level check memoized by the fast repair engine.
func (c *Catalog) HasCandidate(typeName string, spec similarity.Spec, value string) bool {
	return len(c.Candidates(typeName, spec, value)) > 0
}

// CandidatesScan is the unindexed counterpart of Candidates: it
// enumerates every instance of the class and tests the matching
// operation directly, the O(|C|·|X|) per-node cost the paper charges
// to the basic repair algorithm (§IV-A complexity analysis). The fast
// repair algorithm replaces this with the signature indexes.
func (c *Catalog) CandidatesScan(typeName string, spec similarity.Spec, value string) []kb.ID {
	cls := c.KB.Lookup(typeName)
	if cls == kb.Invalid {
		return nil
	}
	var out []kb.ID
	for _, inst := range c.KB.InstancesOf(cls) {
		if spec.Match(value, c.KB.Name(inst)) {
			out = append(out, inst)
		}
	}
	return out
}

// Lookup retrieves candidates with or without the signature indexes.
func (c *Catalog) Lookup(typeName string, spec similarity.Spec, value string, scan bool) []kb.ID {
	if scan {
		return c.CandidatesScan(typeName, spec, value)
	}
	return c.Candidates(typeName, spec, value)
}
