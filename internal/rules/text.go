package rules

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"detective/internal/similarity"
)

// The rule text format is line-oriented:
//
//	rule phi2 {
//	  node w1 col="Name" type="Nobel laureates in Chemistry" sim="="
//	  node w2 col="Institution" type="organization" sim="ED,2"
//	  pos  p2 col="City" type="city" sim="="
//	  neg  n2 col="City" type="city" sim="="
//	  edge w1 "worksAt" w2
//	  edge w1 "wasBornIn" n2
//	  edge w2 "locatedIn" p2
//	}
//
// Unquoted values are accepted where they contain no spaces. "#"
// starts a comment. A rule may omit the neg line (annotation-only).
// Existential intermediate nodes of a positive/negative path are
// declared with `path NAME type="T"` and referenced by edges like any
// other node.

// ParseRules reads all rules from r. Rules are not validated against
// a schema here; call DR.Validate (or NewMatcher) with the target
// schema afterwards.
func ParseRules(r io.Reader) ([]*DR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []*DR
	var cur *DR
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitFields(line)
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %v", lineno, err)
		}
		switch fields[0] {
		case "rule":
			if cur != nil {
				return nil, fmt.Errorf("rules: line %d: nested rule", lineno)
			}
			if len(fields) != 3 || fields[2] != "{" {
				return nil, fmt.Errorf("rules: line %d: want `rule NAME {`", lineno)
			}
			cur = &DR{Name: fields[1]}
		case "}":
			if cur == nil {
				return nil, fmt.Errorf("rules: line %d: unmatched }", lineno)
			}
			if cur.Pos.Name == "" {
				return nil, fmt.Errorf("rules: line %d: rule %s has no pos node", lineno, cur.Name)
			}
			out = append(out, cur)
			cur = nil
		case "path":
			if cur == nil {
				return nil, fmt.Errorf("rules: line %d: path outside rule", lineno)
			}
			n, err := parseNode(fields)
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: %v", lineno, err)
			}
			if n.Col != "" {
				return nil, fmt.Errorf("rules: line %d: path node %s must not bind a column", lineno, n.Name)
			}
			cur.Path = append(cur.Path, PathNode{Name: n.Name, Type: n.Type})
		case "node", "pos", "neg":
			if cur == nil {
				return nil, fmt.Errorf("rules: line %d: %s outside rule", lineno, fields[0])
			}
			n, err := parseNode(fields)
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: %v", lineno, err)
			}
			if n.Col == "" {
				return nil, fmt.Errorf("rules: line %d: %s node %s needs col=", lineno, fields[0], n.Name)
			}
			switch fields[0] {
			case "node":
				cur.Evidence = append(cur.Evidence, n)
			case "pos":
				if cur.Pos.Name != "" {
					return nil, fmt.Errorf("rules: line %d: duplicate pos node", lineno)
				}
				cur.Pos = n
			case "neg":
				if cur.Neg != nil {
					return nil, fmt.Errorf("rules: line %d: duplicate neg node", lineno)
				}
				nn := n
				cur.Neg = &nn
			}
		case "edge":
			if cur == nil {
				return nil, fmt.Errorf("rules: line %d: edge outside rule", lineno)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("rules: line %d: want `edge FROM REL TO`", lineno)
			}
			cur.Edges = append(cur.Edges, Edge{From: fields[1], Rel: fields[2], To: fields[3]})
		default:
			return nil, fmt.Errorf("rules: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("rules: rule %s not closed", cur.Name)
	}
	return out, nil
}

func parseNode(fields []string) (Node, error) {
	if len(fields) < 2 {
		return Node{}, fmt.Errorf("node line needs a name")
	}
	n := Node{Name: fields[1], Sim: similarity.Eq}
	for _, f := range fields[2:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Node{}, fmt.Errorf("bad node attribute %q", f)
		}
		switch k {
		case "col":
			n.Col = v
		case "type":
			n.Type = v
		case "sim":
			sp, err := similarity.ParseSpec(v)
			if err != nil {
				return Node{}, err
			}
			n.Sim = sp
		default:
			return Node{}, fmt.Errorf("unknown node attribute %q", k)
		}
	}
	if n.Type == "" {
		return Node{}, fmt.Errorf("node %s needs type=", n.Name)
	}
	return n, nil
}

// splitFields splits a line into fields, honouring double quotes both
// around whole fields and around attribute values (col="Full Name").
func splitFields(line string) ([]string, error) {
	var fields []string
	var b strings.Builder
	inQuote := false
	flush := func() {
		if b.Len() > 0 {
			fields = append(fields, b.String())
			b.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			b.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	flush()
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return fields, nil
}

// EncodeRules writes rules in the text format accepted by ParseRules.
func EncodeRules(w io.Writer, rs []*DR) error {
	bw := bufio.NewWriter(w)
	for i, r := range rs {
		if i > 0 {
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, "rule %s {\n", r.Name)
		for _, n := range r.Evidence {
			writeNode(bw, "node", n)
		}
		writeNode(bw, "pos ", r.Pos)
		if r.Neg != nil {
			writeNode(bw, "neg ", *r.Neg)
		}
		for _, pn := range r.Path {
			fmt.Fprintf(bw, "  path %s type=%s\n", quoteIfNeeded(pn.Name), strconv.Quote(pn.Type))
		}
		for _, e := range r.Edges {
			fmt.Fprintf(bw, "  edge %s %s %s\n", quoteIfNeeded(e.From), quoteIfNeeded(e.Rel), quoteIfNeeded(e.To))
		}
		fmt.Fprintln(bw, "}")
	}
	return bw.Flush()
}

func writeNode(w io.Writer, kw string, n Node) {
	fmt.Fprintf(w, "  %s %s col=%s type=%s sim=%s\n",
		kw, quoteIfNeeded(n.Name), strconv.Quote(n.Col), strconv.Quote(n.Type), strconv.Quote(n.Sim.String()))
}

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t\"") || s == "" {
		return strconv.Quote(s)
	}
	return s
}
