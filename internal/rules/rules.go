// Package rules implements the paper's core contribution: schema-level
// matching graphs, instance-level matching, and detective rules (DRs).
//
// A schema-level matching graph (§II-B) explains how a subset of a
// relation's columns is semantically linked through a KB: each node
// binds a column to a KB type under a matching operation, and each
// edge labels a pair of columns with a KB relationship or property.
//
// A detective rule (§II-C) merges two schema-level matching graphs
// that differ in exactly one node over the same column: the *positive*
// node p captures what a correct value looks like, the *negative* node
// n captures how a wrong value is connected to the correct evidence
// values. Matching a tuple against evidence∪{p} proves values correct;
// matching against evidence∪{n} while p can be satisfied by a
// different KB instance detects the error and supplies the repair.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"detective/internal/relation"
	"detective/internal/similarity"
)

// Node binds one relation column to one KB type under a matching
// operation — the (col, type, sim) triple shown in the paper's rule
// figures.
type Node struct {
	Name string // identifier unique within the rule, e.g. "x1", "p2"
	Col  string // column of the relation
	Type string // KB class, or kb.LiteralClass
	Sim  similarity.Spec
}

// Key returns the identity of the check this node performs on a
// tuple, shared across rules — the node key of the inverted lists in
// the paper's Figure 5 ("Name, Nobel laureates in Chemistry, =").
func (n Node) Key() string { return n.Col + "\x00" + n.Type + "\x00" + n.Sim.String() }

func (n Node) String() string {
	return fmt.Sprintf("%s(col=%s type=%s sim=%s)", n.Name, n.Col, n.Type, n.Sim)
}

// Edge is a directed, labelled edge between two rule nodes,
// referenced by node name.
type Edge struct {
	From string
	To   string
	Rel  string // relationship or property label in the KB
}

func (e Edge) String() string { return fmt.Sprintf("%s -%s-> %s", e.From, e.Rel, e.To) }

// Graph is a schema-level matching graph: the unit rule generation
// discovers and KATARA-style table patterns are expressed in.
type Graph struct {
	Nodes []Node
	Edges []Edge
}

// Validate checks structural well-formedness of the graph against a
// schema: unique node names, distinct columns (§II-B condition 2),
// columns present in the schema, edges referencing known nodes, and
// connectivity.
func (g *Graph) Validate(schema *relation.Schema) error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("rules: graph has no nodes")
	}
	byName := make(map[string]bool, len(g.Nodes))
	byCol := make(map[string]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Name == "" {
			return fmt.Errorf("rules: node with empty name")
		}
		if byName[n.Name] {
			return fmt.Errorf("rules: duplicate node name %q", n.Name)
		}
		byName[n.Name] = true
		if n.Col != "" {
			// Column-bound node. Column-less nodes are existential
			// (path) nodes carrying only a type constraint.
			if byCol[n.Col] {
				return fmt.Errorf("rules: two nodes over column %q", n.Col)
			}
			byCol[n.Col] = true
			if schema != nil && !schema.Has(n.Col) {
				return fmt.Errorf("rules: node %q references unknown column %q", n.Name, n.Col)
			}
		}
		if n.Type == "" {
			return fmt.Errorf("rules: node %q has empty type", n.Name)
		}
	}
	for _, e := range g.Edges {
		if !byName[e.From] || !byName[e.To] {
			return fmt.Errorf("rules: edge %v references unknown node", e)
		}
		if e.From == e.To {
			return fmt.Errorf("rules: self-loop on node %q", e.From)
		}
		if e.Rel == "" {
			return fmt.Errorf("rules: edge %s->%s has empty relationship", e.From, e.To)
		}
	}
	if !connected(g.Nodes, g.Edges) {
		return fmt.Errorf("rules: graph is not connected")
	}
	return nil
}

// connected reports whether the undirected view of the graph is
// connected.
func connected(nodes []Node, edges []Edge) bool {
	if len(nodes) <= 1 {
		return true
	}
	adj := make(map[string][]string, len(nodes))
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := map[string]bool{nodes[0].Name: true}
	stack := []string{nodes[0].Name}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(seen) == len(nodes)
}

// DR is a detective rule. Evidence nodes plus the positive node form
// the positive schema-level matching graph; evidence plus the negative
// node form the negative one. Pos and Neg are over the same column.
//
// Neg may be nil: such a rule is *annotation-only* — it can prove
// values correct but never detects or repairs an error. This models
// the paper's conservative treatment of narrow WebTables (§V-B Exp-1),
// where no negative semantics can be trusted.
type DR struct {
	Name     string
	Evidence []Node
	Pos      Node
	Neg      *Node
	// Path holds existential intermediate nodes: typed KB instances
	// that are bound to no column and exist only to connect evidence
	// to the positive or negative node through a multi-hop path. This
	// implements the extension the paper sketches in §II-C ("extend
	// from one negative node ... to a negative path"): e.g. a wrong
	// Zip that is the zip of the person's *birth* city is detected via
	// Name -bornIn-> ?city -hasZip-> n, where ?city is a path node.
	Path []PathNode
	// Edges reference evidence, path and Pos/Neg node names. Edges on
	// the Pos side of the graph belong to the positive semantics,
	// edges on the Neg side to the negative semantics; edges among
	// evidence nodes are shared structure.
	Edges []Edge
}

// PathNode is an existential intermediate node of a positive or
// negative path: it constrains matching to instances of Type but
// binds no relation column.
type PathNode struct {
	Name string
	Type string
}

// asNode renders the path node in the generic node shape (empty
// column, equality sim — the sim is never consulted for column-less
// nodes).
func (p PathNode) asNode() Node { return Node{Name: p.Name, Type: p.Type} }

// EvidenceCols returns the columns of the evidence nodes in rule
// order.
func (r *DR) EvidenceCols() []string {
	out := make([]string, len(r.Evidence))
	for i, n := range r.Evidence {
		out[i] = n.Col
	}
	return out
}

// PosCol returns the column the rule marks/repairs (col(p) = col(n)).
func (r *DR) PosCol() string { return r.Pos.Col }

// AllCols returns the set of columns the rule touches, sorted.
func (r *DR) AllCols() []string {
	cols := append(r.EvidenceCols(), r.Pos.Col)
	sort.Strings(cols)
	return cols
}

// node returns the node with the given name, searching evidence then
// pos then neg.
func (r *DR) node(name string) (Node, bool) {
	for _, n := range r.Evidence {
		if n.Name == name {
			return n, true
		}
	}
	if r.Pos.Name == name {
		return r.Pos, true
	}
	if r.Neg != nil && r.Neg.Name == name {
		return *r.Neg, true
	}
	for _, p := range r.Path {
		if p.Name == name {
			return p.asNode(), true
		}
	}
	return Node{}, false
}

// sideGraph assembles the schema-level matching graph of one side of
// the rule: evidence ∪ {pole} plus the path nodes that lie on a route
// to this side's pole once the opposite pole's edges are removed. A
// path chain that leads only to the *other* pole must not constrain
// this side, so path nodes unreachable from the pole are dropped with
// their edges.
func (r *DR) sideGraph(pole Node, exclude string) Graph {
	nodes := append(append([]Node(nil), r.Evidence...), pole)
	var edges []Edge
	for _, e := range r.Edges {
		if exclude != "" && (e.From == exclude || e.To == exclude) {
			continue
		}
		edges = append(edges, e)
	}
	// Walk from the pole without passing *through* evidence nodes:
	// evidence instances are fixed anchors, so a path node constrains
	// the pole only when it reaches it via existential nodes.
	ev := make(map[string]bool, len(r.Evidence))
	for _, n := range r.Evidence {
		ev[n.Name] = true
	}
	reach := map[string]bool{pole.Name: true}
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			expand := func(from, to string) {
				if reach[from] && !ev[from] && !reach[to] {
					reach[to] = true
					changed = true
				}
			}
			expand(e.From, e.To)
			expand(e.To, e.From)
		}
	}
	keep := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		keep[n.Name] = true
	}
	for _, p := range r.Path {
		if reach[p.Name] {
			keep[p.Name] = true
			nodes = append(nodes, p.asNode())
		}
	}
	var kept []Edge
	for _, e := range edges {
		if keep[e.From] && keep[e.To] {
			kept = append(kept, e)
		}
	}
	return Graph{Nodes: nodes, Edges: kept}
}

// positiveGraph returns the evidence∪path∪{pos} graph.
func (r *DR) positiveGraph() Graph {
	exclude := ""
	if r.Neg != nil {
		exclude = r.Neg.Name
	}
	return r.sideGraph(r.Pos, exclude)
}

// negativeGraph returns the evidence∪path∪{neg} graph; ok is false
// for annotation-only rules.
func (r *DR) negativeGraph() (Graph, bool) {
	if r.Neg == nil {
		return Graph{}, false
	}
	return r.sideGraph(*r.Neg, r.Pos.Name), true
}

// evidenceEdges returns the edges among evidence nodes only.
func (r *DR) evidenceEdges() []Edge {
	ev := make(map[string]bool, len(r.Evidence))
	for _, n := range r.Evidence {
		ev[n.Name] = true
	}
	var out []Edge
	for _, e := range r.Edges {
		if ev[e.From] && ev[e.To] {
			out = append(out, e)
		}
	}
	return out
}

// PosEdges returns the edges incident to the positive node.
func (r *DR) PosEdges() []Edge { return r.posEdges() }

// NegEdges returns the edges incident to the negative node (nil for
// annotation-only rules).
func (r *DR) NegEdges() []Edge { return r.negEdges() }

// posEdges returns the edges incident to the positive node.
func (r *DR) posEdges() []Edge {
	var out []Edge
	for _, e := range r.Edges {
		if e.From == r.Pos.Name || e.To == r.Pos.Name {
			out = append(out, e)
		}
	}
	return out
}

// negEdges returns the edges incident to the negative node.
func (r *DR) negEdges() []Edge {
	if r.Neg == nil {
		return nil
	}
	var out []Edge
	for _, e := range r.Edges {
		if e.From == r.Neg.Name || e.To == r.Neg.Name {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks the structural conditions of §II-C: the positive
// graph and (if present) the negative graph are well-formed schema-
// level matching graphs over the schema, Pos and Neg cover the same
// column, no evidence node reuses that column, no edge connects Pos
// and Neg directly, and the positive node is reachable so corrections
// can be drawn from the KB.
func (r *DR) Validate(schema *relation.Schema) error {
	if r.Name == "" {
		return fmt.Errorf("rules: rule with empty name")
	}
	if r.Neg != nil {
		if r.Neg.Col != r.Pos.Col {
			return fmt.Errorf("rules: %s: positive column %q != negative column %q", r.Name, r.Pos.Col, r.Neg.Col)
		}
		if r.Neg.Name == r.Pos.Name {
			return fmt.Errorf("rules: %s: positive and negative nodes share name %q", r.Name, r.Pos.Name)
		}
		for _, e := range r.Edges {
			if (e.From == r.Pos.Name && e.To == r.Neg.Name) || (e.From == r.Neg.Name && e.To == r.Pos.Name) {
				return fmt.Errorf("rules: %s: edge directly connects positive and negative nodes", r.Name)
			}
		}
	}
	seen := make(map[string]bool)
	for _, n := range r.Evidence {
		seen[n.Name] = true
	}
	seen[r.Pos.Name] = true
	if r.Neg != nil {
		seen[r.Neg.Name] = true
	}
	pos := r.positiveGraph()
	neg, hasNeg := r.negativeGraph()
	for _, p := range r.Path {
		if p.Name == "" || p.Type == "" {
			return fmt.Errorf("rules: %s: path node needs a name and a type", r.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("rules: %s: path node name %q collides", r.Name, p.Name)
		}
		seen[p.Name] = true
		used := false
		for _, n := range pos.Nodes {
			if n.Name == p.Name {
				used = true
			}
		}
		if hasNeg {
			for _, n := range neg.Nodes {
				if n.Name == p.Name {
					used = true
				}
			}
		}
		if !used {
			return fmt.Errorf("rules: %s: path node %q is connected to neither side of the rule", r.Name, p.Name)
		}
	}
	pg := pos
	if err := pg.Validate(schema); err != nil {
		return fmt.Errorf("rules: %s: positive graph: %w", r.Name, err)
	}
	if len(r.Evidence) > 0 && len(r.posEdges()) == 0 {
		return fmt.Errorf("rules: %s: positive node %q has no incident edge; corrections cannot be drawn from the KB", r.Name, r.Pos.Name)
	}
	if ng, ok := r.negativeGraph(); ok {
		if err := ng.Validate(schema); err != nil {
			return fmt.Errorf("rules: %s: negative graph: %w", r.Name, err)
		}
		if len(r.Evidence) > 0 && len(r.negEdges()) == 0 {
			return fmt.Errorf("rules: %s: negative node %q has no incident edge", r.Name, r.Neg.Name)
		}
	}
	return nil
}

func (r *DR) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DR %s: evidence{", r.Name)
	for i, n := range r.Evidence {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(n.Col)
	}
	fmt.Fprintf(&b, "} pos=%s", r.Pos.Col)
	if r.Neg == nil {
		b.WriteString(" (annotation-only)")
	}
	return b.String()
}
