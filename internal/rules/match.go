package rules

import (
	"fmt"
	"sort"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/similarity"
)

// Assignment maps rule-node names to the KB instances they matched —
// one instance-level matching graph (§II-B).
type Assignment map[string]kb.ID

func (a Assignment) clone() Assignment {
	out := make(Assignment, len(a)+1)
	for k, v := range a {
		out[k] = v
	}
	return out
}

// FindAssignments returns instance-level matching graphs binding every
// node to a KB instance such that (1) the tuple value of the node's
// column matches the instance under the node's sim, (2) the instance
// has the node's type, and (3) every edge's relationship holds between
// the bound instances. At most limit assignments are returned
// (limit <= 0 means all). Nodes are matched in ascending candidate-set
// order, and edges are checked as soon as both endpoints are bound.
func FindAssignments(cat *Catalog, schema *relation.Schema, t *relation.Tuple,
	nodes []Node, edges []Edge, limit int) []Assignment {
	return findAssignments(cat.Graph(), cat, schema, t, nodes, edges, limit, false)
}

// findAssignments is FindAssignments with an explicit retrieval mode
// (scan=true charges the basic algorithm's full class-extent scan for
// every node instead of using the signature indexes) and an explicitly
// pinned graph, so one tuple's whole evaluation sees one KB even while
// the catalog's store is being hot-swapped.
func findAssignments(g *kb.Graph, cat *Catalog, schema *relation.Schema, t *relation.Tuple,
	nodes []Node, edges []Edge, limit int, scan bool) []Assignment {

	// Candidate sets per column-bound node. Column-less nodes (path
	// nodes) are resolved lazily from their already-bound neighbours.
	cands := make([][]kb.ID, len(nodes))
	var bound, lazy []int
	for i, n := range nodes {
		if n.Col == "" {
			lazy = append(lazy, i)
			continue
		}
		col := schema.Col(n.Col)
		if col < 0 {
			return nil
		}
		cands[i] = cat.LookupOn(g, n.Type, n.Sim, t.Values[col], scan)
		if len(cands[i]) == 0 {
			return nil
		}
		bound = append(bound, i)
	}
	if len(bound) == 0 && len(lazy) > 0 {
		return nil // nothing to anchor the existential nodes on
	}

	// Match cheapest bound nodes first, then path nodes in an order
	// where each has at least one previously matched neighbour.
	sort.Slice(bound, func(a, b int) bool { return len(cands[bound[a]]) < len(cands[bound[b]]) })
	order, ok := attachLazy(nodes, edges, bound, lazy)
	if !ok {
		return nil // a path node is disconnected from the anchored part
	}

	pos := make(map[string]int, len(nodes)) // node name -> index in nodes
	for i, n := range nodes {
		pos[n.Name] = i
	}

	var out []Assignment
	cur := make(Assignment, len(nodes))

	var rec func(step int) bool // returns true when the limit is hit
	rec = func(step int) bool {
		if step == len(order) {
			out = append(out, cur.clone())
			return limit > 0 && len(out) >= limit
		}
		ni := order[step]
		node := nodes[ni]
		options := cands[ni]
		if node.Col == "" {
			options = lazyCandidates(g, nodes, edges, cur, ni)
		}
	candidates:
		for _, inst := range options {
			// Edges whose both endpoints are now bound must hold.
			for _, e := range edges {
				fi, ok1 := pos[e.From]
				ti, ok2 := pos[e.To]
				if !ok1 || !ok2 {
					continue // edge touches a node outside this set
				}
				if fi != ni && ti != ni {
					continue // neither endpoint is the node being bound
				}
				var from, to kb.ID
				if fi == ni {
					from = inst
					v, bound := cur[e.To]
					if !bound {
						continue
					}
					to = v
				} else {
					to = inst
					v, bound := cur[e.From]
					if !bound {
						continue
					}
					from = v
				}
				rel := g.Lookup(e.Rel)
				if rel == kb.Invalid || !g.HasEdge(from, rel, to) {
					continue candidates
				}
			}
			cur[node.Name] = inst
			if rec(step + 1) {
				return true
			}
			delete(cur, node.Name)
		}
		return false
	}
	rec(0)
	return out
}

// attachLazy appends the lazy node indexes to the bound order such
// that each lazy node, when visited, is adjacent to an already-placed
// node. ok is false when some lazy node can never attach.
func attachLazy(nodes []Node, edges []Edge, bound, lazy []int) ([]int, bool) {
	order := append([]int(nil), bound...)
	placed := make(map[string]bool, len(nodes))
	for _, i := range bound {
		placed[nodes[i].Name] = true
	}
	remaining := append([]int(nil), lazy...)
	for len(remaining) > 0 {
		progress := false
		for k, i := range remaining {
			name := nodes[i].Name
			attached := false
			for _, e := range edges {
				if e.From == name && placed[e.To] || e.To == name && placed[e.From] {
					attached = true
					break
				}
			}
			if attached {
				order = append(order, i)
				placed[name] = true
				remaining = append(remaining[:k], remaining[k+1:]...)
				progress = true
				break
			}
		}
		if !progress {
			return nil, false
		}
	}
	return order, true
}

// lazyCandidates computes the instances that can stand as the
// column-less node ni: the intersection of the relationship
// neighbourhoods of its already-bound neighbours, filtered by type.
func lazyCandidates(g *kb.Graph, nodes []Node, edges []Edge, cur Assignment, ni int) []kb.ID {
	node := nodes[ni]
	cls := g.Lookup(node.Type)
	if cls == kb.Invalid {
		return nil
	}
	var result map[kb.ID]bool
	for _, e := range edges {
		var neigh []kb.ID
		switch {
		case e.From == node.Name:
			o, bound := cur[e.To]
			if !bound {
				continue
			}
			rel := g.Lookup(e.Rel)
			if rel == kb.Invalid {
				return nil
			}
			neigh = g.Subjects(rel, o)
		case e.To == node.Name:
			o, bound := cur[e.From]
			if !bound {
				continue
			}
			rel := g.Lookup(e.Rel)
			if rel == kb.Invalid {
				return nil
			}
			neigh = g.Objects(o, rel)
		default:
			continue
		}
		set := make(map[kb.ID]bool, len(neigh))
		for _, x := range neigh {
			if !g.HasType(x, cls) {
				continue
			}
			if result == nil || result[x] {
				set[x] = true
			}
		}
		result = set
		if len(result) == 0 {
			return nil
		}
	}
	if result == nil {
		return nil
	}
	out := make([]kb.ID, 0, len(result))
	for x := range result {
		out = append(out, x)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// OutcomeKind classifies the result of evaluating a rule on a tuple.
type OutcomeKind uint8

const (
	// NoMatch: the rule says nothing about the tuple.
	NoMatch OutcomeKind = iota
	// Positive: proof positive — evidence and positive node matched;
	// the touched cells are correct (§II-C case 1).
	Positive
	// Repair: proof negative and correction — evidence plus negative
	// node matched and the KB supplies at least one replacement value
	// (§II-C cases 2–3).
	Repair
)

func (k OutcomeKind) String() string {
	switch k {
	case Positive:
		return "positive"
	case Repair:
		return "repair"
	default:
		return "no-match"
	}
}

// Outcome is the verdict of one rule on one tuple.
type Outcome struct {
	Kind OutcomeKind
	// MarkCols are the columns proven correct (evidence ∪ {p}).
	MarkCols []string
	// RepairCol is the column to rewrite (only for Kind == Repair).
	RepairCol string
	// Repairs holds the candidate correct values drawn from the KB,
	// deduplicated and ordered most-similar first. More than one entry
	// is a multi-version repair (§IV-C).
	Repairs []string
	// Witness maps rule-node names to the KB instance names of one
	// instance-level matching graph behind the verdict — the
	// "white-box" provenance of the decision. For a Repair via proof
	// negative, the negative node's binding is the instance the wrong
	// value matched; path nodes appear under their declared names.
	Witness map[string]string
	// Canonical maps matched columns to the canonical KB instance name
	// when the tuple value matched only fuzzily (a typo within the
	// node's similarity threshold). Applying the rule rewrites these
	// cells to the canonical names so that, regardless of which rule
	// marks a cell first, the fixpoint carries the KB's spelling —
	// without this, marking a typo'd evidence value would freeze the
	// typo and break the Church-Rosser property.
	Canonical map[string]string
}

// Matcher evaluates one detective rule against tuples of one schema
// using one KB.
type Matcher struct {
	Rule   *DR
	Cat    *Catalog
	Schema *relation.Schema

	// Scan disables the signature indexes for candidate retrieval,
	// reproducing the basic repair algorithm's per-node cost model.
	Scan bool

	posNodes    []Node // evidence ∪ {pos}
	posEdges    []Edge
	negNodes    []Node // evidence ∪ {neg}; nil if annotation-only
	negEdges    []Edge
	evEdges     []Edge
	posIncident []Edge // edges incident to the positive node
	negIncident []Edge // edges incident to the negative node
	markCols    []string
	posCol      int // schema index of Pos.Col, resolved once
}

// NewMatcher validates the rule against the schema and prepares the
// node sets used during evaluation.
func NewMatcher(rule *DR, cat *Catalog, schema *relation.Schema) (*Matcher, error) {
	if err := rule.Validate(schema); err != nil {
		return nil, err
	}
	allNodes := append(append([]Node(nil), rule.Evidence...), rule.Pos)
	if rule.Neg != nil {
		allNodes = append(allNodes, *rule.Neg)
	}
	for _, n := range allNodes {
		if n.Sim.Op == similarity.OpED && n.Sim.K > MaxEDThreshold {
			return nil, fmt.Errorf("rules: %s: node %s: ED threshold %d exceeds supported maximum %d",
				rule.Name, n.Name, n.Sim.K, MaxEDThreshold)
		}
	}
	m := &Matcher{Rule: rule, Cat: cat, Schema: schema}
	pg := rule.positiveGraph()
	m.posNodes, m.posEdges = pg.Nodes, pg.Edges
	if ng, ok := rule.negativeGraph(); ok {
		m.negNodes, m.negEdges = ng.Nodes, ng.Edges
	}
	m.evEdges = rule.evidenceEdges()
	m.posIncident = rule.posEdges()
	m.negIncident = rule.negEdges()
	m.markCols = append(rule.EvidenceCols(), rule.Pos.Col)
	m.posCol = schema.MustCol(rule.Pos.Col)
	return m, nil
}

// MarkCols returns the columns a successful application marks.
func (m *Matcher) MarkCols() []string { return m.markCols }

// assignmentCap bounds the number of instance-level matching graphs
// enumerated per rule per tuple. Evidence matches are near-functional
// in practice (the user picks such rules, §III-B), so this is purely
// defensive.
const assignmentCap = 64

// Evaluate applies the rule's semantics to t (read-only): proof
// positive first, then proof negative + correction, mirroring
// Algorithm 1 lines 3–7.
//
// One refinement beyond the letter of Algorithm 1: when the positive
// node matches only *fuzzily* (the cell value is within the node's
// similarity threshold of a KB instance but not equal to it — a typo),
// Evaluate reports a Repair that rewrites the cell to the canonical
// instance name instead of a bare Positive. This is how the paper's
// experiments repair typo errors ("repair an error to the most
// similar candidate", §V-B Exp-2(B)).
//
// Two equivalent strategies are implemented. The *value-driven* one
// (used in Scan mode, i.e. by the basic algorithm) matches the full
// positive/negative graphs with candidate sets retrieved from the
// tuple values — the paper's Algorithm 1 cost model. The *edge-driven*
// one (the fast engine) first matches the evidence nodes, then derives
// positive/negative node candidates through the KB edges from the
// matched evidence instances, which avoids value-driven retrieval over
// large or low-entropy class extents entirely.
func (m *Matcher) Evaluate(t *relation.Tuple) Outcome {
	return m.EvaluateOn(m.Cat.Graph(), t)
}

// EvaluateOn is Evaluate against an explicitly pinned graph: callers
// repairing a whole tuple (or table) pin the store's graph once and
// evaluate every rule on it, so a concurrent hot swap never mixes two
// KBs within one tuple.
func (m *Matcher) EvaluateOn(g *kb.Graph, t *relation.Tuple) Outcome {
	if !m.Scan && len(m.Rule.Evidence) > 0 {
		return m.evaluateEdgeDriven(g, t)
	}
	return m.evaluateValueDriven(g, t)
}

// evaluateEdgeDriven matches evidence first and resolves the positive
// and negative nodes through their incident edges.
func (m *Matcher) evaluateEdgeDriven(g *kb.Graph, t *relation.Tuple) Outcome {
	evAs := findAssignments(g, m.Cat, m.Schema, t, m.Rule.Evidence, m.evEdges, assignmentCap, false)
	if len(evAs) == 0 {
		return Outcome{Kind: NoMatch}
	}
	value := t.Values[m.posCol]

	// (1) Proof positive: a positive-node instance consistent with the
	// evidence whose name matches the cell value under sim(p).
	var exactAs, fuzzyAs []Assignment
	fuzzyNames := make(map[string]bool)
	posCands := make([][]kb.ID, len(evAs))
	for i, a := range evAs {
		posCands[i] = m.poleCandidates(g, a, m.posNodes, m.posEdges, m.Rule.Pos, m.posIncident)
		exact := false
		for _, xp := range posCands[i] {
			name := g.Name(xp)
			if !m.Rule.Pos.Sim.Match(value, name) {
				continue
			}
			if name == value {
				exact = true
			} else {
				fuzzyNames[name] = true
			}
		}
		if exact {
			exactAs = append(exactAs, a)
		} else if len(fuzzyNames) > 0 {
			fuzzyAs = append(fuzzyAs, a)
		}
	}
	if len(exactAs) > 0 {
		return Outcome{Kind: Positive, MarkCols: m.markCols,
			Canonical: m.canonicalEvidence(g, t, exactAs), Witness: m.witness(g, exactAs[0], nil)}
	}
	if len(fuzzyNames) > 0 {
		repairs := make([]string, 0, len(fuzzyNames))
		for v := range fuzzyNames {
			repairs = append(repairs, v)
		}
		sortRepairs(value, repairs)
		return Outcome{Kind: Repair, MarkCols: m.markCols, RepairCol: m.Rule.Pos.Col,
			Repairs: repairs, Canonical: m.canonicalEvidence(g, t, fuzzyAs),
			Witness: m.witness(g, fuzzyAs[0], nil)}
	}

	// (2) Proof negative + (3) correction.
	if m.Rule.Neg == nil {
		return Outcome{Kind: NoMatch}
	}
	repairSet := make(map[string]bool)
	var negAs []Assignment
	var witness map[string]string
	for i, a := range evAs {
		xns := make(map[kb.ID]bool)
		var firstXn kb.ID = kb.Invalid
		for _, xn := range m.poleCandidates(g, a, m.negNodes, m.negEdges, *m.Rule.Neg, m.negIncident) {
			if m.Rule.Neg.Sim.Match(value, g.Name(xn)) {
				xns[xn] = true
				if firstXn == kb.Invalid {
					firstXn = xn
				}
			}
		}
		if len(xns) == 0 {
			continue
		}
		negAs = append(negAs, a)
		repaired := false
		for _, xp := range posCands[i] {
			if xns[xp] {
				continue // paper requires xp != xn
			}
			repairSet[g.Name(xp)] = true
			repaired = true
		}
		if repaired && witness == nil {
			witness = m.witness(g, a, map[string]kb.ID{m.Rule.Neg.Name: firstXn})
		}
	}
	if len(repairSet) == 0 {
		return Outcome{Kind: NoMatch}
	}
	repairs := make([]string, 0, len(repairSet))
	for v := range repairSet {
		repairs = append(repairs, v)
	}
	sortRepairs(value, repairs)
	return Outcome{Kind: Repair, MarkCols: m.markCols, RepairCol: m.Rule.Pos.Col,
		Repairs: repairs, Canonical: m.canonicalEvidence(g, t, negAs), Witness: witness}
}

// witness renders an assignment (plus optional extra bindings) as
// node-name -> instance-name provenance.
func (m *Matcher) witness(g *kb.Graph, a Assignment, extra map[string]kb.ID) map[string]string {
	out := make(map[string]string, len(a)+len(extra))
	for name, inst := range a {
		out[name] = g.Name(inst)
	}
	for name, inst := range extra {
		if inst != kb.Invalid {
			out[name] = g.Name(inst)
		}
	}
	return out
}

// evaluateValueDriven matches the full positive (then negative) graph
// with value-retrieved candidate sets per node.
func (m *Matcher) evaluateValueDriven(g *kb.Graph, t *relation.Tuple) Outcome {
	// (1) Proof positive.
	if as := findAssignments(g, m.Cat, m.Schema, t, m.posNodes, m.posEdges, assignmentCap, m.Scan); len(as) > 0 {
		value := t.Values[m.posCol]
		names := make(map[string]bool, len(as))
		for _, a := range as {
			names[g.Name(a[m.Rule.Pos.Name])] = true
		}
		canon := m.canonicalEvidence(g, t, as)
		if names[value] {
			return Outcome{Kind: Positive, MarkCols: m.markCols, Canonical: canon, Witness: m.witness(g, as[0], nil)}
		}
		repairs := make([]string, 0, len(names))
		for v := range names {
			repairs = append(repairs, v)
		}
		sortRepairs(value, repairs)
		return Outcome{Kind: Repair, MarkCols: m.markCols, RepairCol: m.Rule.Pos.Col, Repairs: repairs, Canonical: canon}
	}
	// (2) Proof negative + (3) correction.
	if m.negNodes == nil {
		return Outcome{Kind: NoMatch}
	}
	// Enumerate instance-level matches of evidence ∪ {neg}; for each,
	// draw replacement instances for the positive node from the KB.
	negAs := findAssignments(g, m.Cat, m.Schema, t, m.negNodes, m.negEdges, assignmentCap, m.Scan)
	if len(negAs) == 0 {
		return Outcome{Kind: NoMatch}
	}
	repairSet := make(map[string]bool)
	for _, a := range negAs {
		xn := a[m.Rule.Neg.Name]
		for _, xp := range m.correctionCandidates(g, a) {
			if xp == xn {
				continue // paper requires xp != xn
			}
			repairSet[g.Name(xp)] = true
		}
	}
	if len(repairSet) == 0 {
		// Proof negative held but the KB offers no correction: stay
		// conservative and do nothing (the paper repairs only when the
		// evidence is sufficient).
		return Outcome{Kind: NoMatch}
	}
	repairs := make([]string, 0, len(repairSet))
	for v := range repairSet {
		repairs = append(repairs, v)
	}
	sortRepairs(t.Values[m.posCol], repairs)
	return Outcome{Kind: Repair, MarkCols: m.markCols, RepairCol: m.Rule.Pos.Col,
		Repairs: repairs, Canonical: m.canonicalEvidence(g, t, negAs)}
}

// canonicalEvidence derives, for each evidence node whose tuple value
// matched a KB instance only fuzzily, the canonical instance name — if
// it is unique across the found assignments. Ambiguous matches are
// left untouched.
func (m *Matcher) canonicalEvidence(g *kb.Graph, t *relation.Tuple, as []Assignment) map[string]string {
	var canon map[string]string
	for _, n := range m.Rule.Evidence {
		if !n.Sim.Fuzzy() {
			continue
		}
		value := t.Values[m.Schema.MustCol(n.Col)]
		unique := ""
		ambiguous := false
		for _, a := range as {
			name := g.Name(a[n.Name])
			if name == value {
				// The raw value itself is a KB instance: keep it.
				unique = ""
				ambiguous = true
				break
			}
			if unique == "" {
				unique = name
			} else if unique != name {
				ambiguous = true
				break
			}
		}
		if !ambiguous && unique != "" {
			if canon == nil {
				canon = make(map[string]string)
			}
			canon[n.Col] = unique
		}
	}
	return canon
}

// sortRepairs orders candidate repairs by ascending edit distance to
// the current (wrong) value, ties broken lexically, so Repairs[0] is
// the "most similar candidate" the paper's single-version experiments
// repair to (§V-B Exp-2(B)).
func sortRepairs(value string, repairs []string) {
	if len(repairs) < 2 {
		return
	}
	dist := make(map[string]int, len(repairs))
	for _, r := range repairs {
		dist[r] = similarity.ED(value, r)
	}
	sort.Slice(repairs, func(i, j int) bool {
		if dist[repairs[i]] != dist[repairs[j]] {
			return dist[repairs[i]] < dist[repairs[j]]
		}
		return repairs[i] < repairs[j]
	})
}

// correctionCandidates computes the KB instances that can stand as the
// positive node given an evidence assignment.
func (m *Matcher) correctionCandidates(g *kb.Graph, evidence Assignment) []kb.ID {
	return m.poleCandidates(g, evidence, m.posNodes, m.posEdges, m.Rule.Pos, m.posIncident)
}

// poleCandidates computes the KB instances that can stand as the
// positive or negative node given an evidence assignment. Without
// path nodes this is the direct edge-neighbourhood intersection; with
// path nodes the side graph is traversed existentially (the §II-C
// path extension), collecting every pole instance reachable through
// type-consistent intermediate instances.
func (m *Matcher) poleCandidates(g *kb.Graph, evidence Assignment, sideNodes []Node, sideEdges []Edge,
	pole Node, incident []Edge) []kb.ID {
	if len(m.Rule.Path) == 0 {
		return m.nodeCandidates(g, evidence, pole, incident)
	}

	// Partition side-graph nodes into seeded (evidence) and
	// existential (path nodes + the pole, resolved via edges).
	var bound, lazy []int
	lazyNodes := make([]Node, len(sideNodes))
	for i, n := range sideNodes {
		if _, ok := evidence[n.Name]; ok {
			bound = append(bound, i)
			lazyNodes[i] = n
		} else {
			lazy = append(lazy, i)
			nn := n
			nn.Col = "" // resolve through edges; sim applied by caller
			lazyNodes[i] = nn
		}
	}
	order, ok := attachLazy(lazyNodes, sideEdges, bound, lazy)
	if !ok {
		return nil
	}

	const (
		maxPole       = 256
		maxExpansions = 8192
	)
	poleSet := make(map[kb.ID]bool)
	cur := make(Assignment, len(sideNodes))
	for name, inst := range evidence {
		cur[name] = inst
	}
	expansions := 0
	var rec func(step int) bool
	rec = func(step int) bool {
		if expansions >= maxExpansions || len(poleSet) >= maxPole {
			return true
		}
		if step == len(order) {
			poleSet[cur[pole.Name]] = true
			return false
		}
		ni := order[step]
		name := lazyNodes[ni].Name
		if _, seeded := cur[name]; seeded {
			return rec(step + 1)
		}
		for _, inst := range lazyCandidates(g, lazyNodes, sideEdges, cur, ni) {
			expansions++
			cur[name] = inst
			if rec(step + 1) {
				delete(cur, name)
				return true
			}
			delete(cur, name)
		}
		return false
	}
	rec(0)
	out := make([]kb.ID, 0, len(poleSet))
	for x := range poleSet {
		out = append(out, x)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// nodeCandidates computes the KB instances that can stand as node
// given an evidence assignment: the intersection of the relationship
// neighbourhoods demanded by every incident edge, filtered by the
// node's type.
func (m *Matcher) nodeCandidates(g *kb.Graph, evidence Assignment, node Node, incident []Edge) []kb.ID {
	cls := g.Lookup(node.Type)
	if cls == kb.Invalid {
		return nil
	}
	var result map[kb.ID]bool
	for _, e := range incident {
		var neigh []kb.ID
		if e.From == node.Name {
			// edge p -> v: candidates are subjects of (x, rel, I[v])
			v, ok := evidence[e.To]
			if !ok {
				return nil
			}
			rel := g.Lookup(e.Rel)
			if rel == kb.Invalid {
				return nil
			}
			neigh = g.Subjects(rel, v)
		} else {
			// edge v -> p: candidates are objects of (I[v], rel, x)
			v, ok := evidence[e.From]
			if !ok {
				return nil
			}
			rel := g.Lookup(e.Rel)
			if rel == kb.Invalid {
				return nil
			}
			neigh = g.Objects(v, rel)
		}
		set := make(map[kb.ID]bool, len(neigh))
		for _, x := range neigh {
			if !g.HasType(x, cls) {
				continue
			}
			if result == nil || result[x] {
				set[x] = true
			}
		}
		result = set
		if len(result) == 0 {
			return nil
		}
	}
	if result == nil {
		return nil
	}
	out := make([]kb.ID, 0, len(result))
	for x := range result {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodeCheck reports whether t can match node n at the value level:
// some KB instance of n's type matches t[col(n)] under n's sim. It is
// the unit the fast repair engine memoizes across rules (Figure 5 node
// keys).
func (m *Matcher) NodeCheck(t *relation.Tuple, n Node) bool {
	return m.NodeCheckOn(m.Cat.Graph(), t, n)
}

// NodeCheckOn is NodeCheck against a pinned graph.
func (m *Matcher) NodeCheckOn(g *kb.Graph, t *relation.Tuple, n Node) bool {
	col := m.Schema.Col(n.Col)
	if col < 0 {
		return false
	}
	return m.Cat.HasCandidateOn(g, n.Type, n.Sim, t.Values[col])
}

// EdgeCheck reports whether t can match edge e at the value level:
// some pair of candidate instances of the endpoint nodes is connected
// by e's relationship. from and to are the endpoint nodes of e.
func (m *Matcher) EdgeCheck(t *relation.Tuple, e Edge, from, to Node) bool {
	return m.EdgeCheckOn(m.Cat.Graph(), t, e, from, to)
}

// EdgeCheckOn is EdgeCheck against a pinned graph.
func (m *Matcher) EdgeCheckOn(g *kb.Graph, t *relation.Tuple, e Edge, from, to Node) bool {
	rel := g.Lookup(e.Rel)
	if rel == kb.Invalid {
		return false
	}
	fc := m.Cat.CandidatesOn(g, from.Type, from.Sim, t.Values[m.Schema.MustCol(from.Col)])
	if len(fc) == 0 {
		return false
	}
	tc := m.Cat.CandidatesOn(g, to.Type, to.Sim, t.Values[m.Schema.MustCol(to.Col)])
	if len(tc) == 0 {
		return false
	}
	toSet := make(map[kb.ID]bool, len(tc))
	for _, x := range tc {
		toSet[x] = true
	}
	for _, f := range fc {
		for _, o := range g.Objects(f, rel) {
			if toSet[o] {
				return true
			}
		}
	}
	return false
}

// EdgeKey is the shared-computation identity of an edge check — the
// Figure 5 edge keys ("Name, worksAt, Institution"), refined with the
// endpoint node keys so that two rules share a check only when it is
// genuinely the same predicate over the same (col, type, sim) pairs.
func EdgeKey(from Node, rel string, to Node) string {
	return from.Key() + "\x01" + rel + "\x01" + to.Key()
}
