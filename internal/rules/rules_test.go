package rules_test

import (
	"bytes"
	"strings"
	"testing"

	"detective/internal/dataset"
	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rules"
	"detective/internal/similarity"
)

func fixture(t *testing.T) (*dataset.PaperExample, *rules.Catalog) {
	t.Helper()
	ex := dataset.NewPaperExample()
	return ex, rules.NewCatalog(ex.KB)
}

func matcherFor(t *testing.T, ex *dataset.PaperExample, cat *rules.Catalog, name string) *rules.Matcher {
	t.Helper()
	for _, r := range ex.Rules {
		if r.Name == name {
			m, err := rules.NewMatcher(r, cat, ex.Schema)
			if err != nil {
				t.Fatalf("NewMatcher(%s): %v", name, err)
			}
			return m
		}
	}
	t.Fatalf("no rule %s", name)
	return nil
}

func TestPaperRulesValidate(t *testing.T) {
	ex, _ := fixture(t)
	for _, r := range ex.Rules {
		if err := r.Validate(ex.Schema); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
}

func TestValidateRejectsBadRules(t *testing.T) {
	schema := relation.NewSchema("R", "A", "B")
	a := rules.Node{Name: "a", Col: "A", Type: "ta", Sim: similarity.Eq}
	pos := rules.Node{Name: "p", Col: "B", Type: "tb", Sim: similarity.Eq}

	cases := []struct {
		name string
		dr   *rules.DR
	}{
		{"empty name", &rules.DR{Evidence: []rules.Node{a}, Pos: pos,
			Edges: []rules.Edge{{From: "a", Rel: "r", To: "p"}}}},
		{"neg over different column", &rules.DR{Name: "x", Evidence: []rules.Node{a}, Pos: pos,
			Neg:   &rules.Node{Name: "n", Col: "A", Type: "tb", Sim: similarity.Eq},
			Edges: []rules.Edge{{From: "a", Rel: "r", To: "p"}, {From: "a", Rel: "s", To: "n"}}}},
		{"pos-neg edge", &rules.DR{Name: "x", Evidence: []rules.Node{a}, Pos: pos,
			Neg: &rules.Node{Name: "n", Col: "B", Type: "tb", Sim: similarity.Eq},
			Edges: []rules.Edge{{From: "a", Rel: "r", To: "p"}, {From: "a", Rel: "s", To: "n"},
				{From: "p", Rel: "q", To: "n"}}}},
		{"disconnected", &rules.DR{Name: "x", Evidence: []rules.Node{a}, Pos: pos}},
		{"unknown column", &rules.DR{Name: "x",
			Evidence: []rules.Node{{Name: "a", Col: "Z", Type: "ta", Sim: similarity.Eq}}, Pos: pos,
			Edges: []rules.Edge{{From: "a", Rel: "r", To: "p"}}}},
		{"evidence reuses pos column", &rules.DR{Name: "x",
			Evidence: []rules.Node{{Name: "a", Col: "B", Type: "ta", Sim: similarity.Eq}}, Pos: pos,
			Edges: []rules.Edge{{From: "a", Rel: "r", To: "p"}}}},
		{"duplicate node names", &rules.DR{Name: "x",
			Evidence: []rules.Node{a, {Name: "a", Col: "B", Type: "t", Sim: similarity.Eq}}, Pos: pos,
			Edges: []rules.Edge{{From: "a", Rel: "r", To: "p"}}}},
	}
	for _, c := range cases {
		if err := c.dr.Validate(schema); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

func TestFindAssignmentsPaperFigure3(t *testing.T) {
	// The instance-level matching graph of Figure 3(b): Name, DOB,
	// Country, Institution of r1 bind to u1, u8, u6, u2.
	ex, cat := fixture(t)
	nodes := []rules.Node{
		{Name: "v1", Col: "Name", Type: "Nobel laureates in Chemistry", Sim: similarity.Eq},
		{Name: "v2", Col: "DOB", Type: kb.LiteralClass, Sim: similarity.Eq},
		{Name: "v3", Col: "Country", Type: "country", Sim: similarity.Eq},
		{Name: "v5", Col: "Institution", Type: "organization", Sim: similarity.EDK(2)},
	}
	edges := []rules.Edge{
		{From: "v1", Rel: "bornOnDate", To: "v2"},
		{From: "v1", Rel: "isCitizenOf", To: "v3"},
		{From: "v1", Rel: "worksAt", To: "v5"},
	}
	r1 := ex.Dirty.Tuples[0]
	as := rules.FindAssignments(cat, ex.Schema, r1, nodes, edges, 0)
	if len(as) != 1 {
		t.Fatalf("got %d assignments, want 1", len(as))
	}
	a := as[0]
	want := map[string]string{
		"v1": "Avram Hershko",
		"v2": "1937-12-31",
		"v3": "Israel",
		"v5": "Israel Institute of Technology",
	}
	for node, inst := range want {
		if got := ex.KB.Name(a[node]); got != inst {
			t.Errorf("%s bound to %q, want %q", node, got, inst)
		}
	}
}

func TestFindAssignmentsRespectsEdges(t *testing.T) {
	ex, cat := fixture(t)
	nodes := []rules.Node{
		{Name: "a", Col: "Name", Type: "Nobel laureates in Chemistry", Sim: similarity.Eq},
		{Name: "b", Col: "City", Type: "city", Sim: similarity.Eq},
	}
	// r1[City] = Karcag: worksAt-city edge must fail, wasBornIn must hold.
	r1 := ex.Dirty.Tuples[0]
	if as := rules.FindAssignments(cat, ex.Schema, r1,
		nodes, []rules.Edge{{From: "a", Rel: "wasBornIn", To: "b"}}, 0); len(as) != 1 {
		t.Errorf("wasBornIn: got %d assignments, want 1", len(as))
	}
}

func TestFindAssignmentsLimit(t *testing.T) {
	ex, cat := fixture(t)
	nodes := []rules.Node{{Name: "a", Col: "Name", Type: "person", Sim: similarity.Eq}}
	r1 := ex.Dirty.Tuples[0]
	// The taxonomy makes Avram Hershko a person; one candidate, limit 1.
	if as := rules.FindAssignments(cat, ex.Schema, r1, nodes, nil, 1); len(as) != 1 {
		t.Fatalf("taxonomy-based match failed: %d assignments", len(as))
	}
}

func TestEvaluateProofPositive(t *testing.T) {
	// Example 5(1): ϕ1 proves r1[Name, DOB, Institution] correct.
	ex, cat := fixture(t)
	m := matcherFor(t, ex, cat, "phi1")
	out := m.Evaluate(ex.Dirty.Tuples[0])
	if out.Kind != rules.Positive {
		t.Fatalf("Kind = %v, want Positive", out.Kind)
	}
	wantCols := []string{"Name", "DOB", "Institution"}
	if len(out.MarkCols) != len(wantCols) {
		t.Fatalf("MarkCols = %v", out.MarkCols)
	}
	for i, c := range wantCols {
		if out.MarkCols[i] != c {
			t.Errorf("MarkCols[%d] = %q, want %q", i, out.MarkCols[i], c)
		}
	}
}

func TestEvaluateProofNegativeAndCorrection(t *testing.T) {
	// Example 5(2)-(3): ϕ2 detects r1[City]=Karcag and repairs to Haifa.
	ex, cat := fixture(t)
	m := matcherFor(t, ex, cat, "phi2")
	out := m.Evaluate(ex.Dirty.Tuples[0])
	if out.Kind != rules.Repair {
		t.Fatalf("Kind = %v, want Repair", out.Kind)
	}
	if out.RepairCol != "City" {
		t.Errorf("RepairCol = %q", out.RepairCol)
	}
	if len(out.Repairs) != 1 || out.Repairs[0] != "Haifa" {
		t.Errorf("Repairs = %v, want [Haifa]", out.Repairs)
	}
}

func TestEvaluatePrizeRepair(t *testing.T) {
	// ϕ4 repairs r1[Prize] from the Lasker award to the Nobel Prize.
	ex, cat := fixture(t)
	m := matcherFor(t, ex, cat, "phi4")
	out := m.Evaluate(ex.Dirty.Tuples[0])
	if out.Kind != rules.Repair {
		t.Fatalf("Kind = %v, want Repair", out.Kind)
	}
	if len(out.Repairs) != 1 || out.Repairs[0] != "Nobel Prize in Chemistry" {
		t.Errorf("Repairs = %v", out.Repairs)
	}
}

func TestEvaluateTypoNormalization(t *testing.T) {
	// r2[Institution] = "Paster Institute" fuzzily matches Pasteur
	// Institute under ED,2; the engine rewrites to the canonical name.
	ex, cat := fixture(t)
	m := matcherFor(t, ex, cat, "phi1")
	out := m.Evaluate(ex.Dirty.Tuples[1])
	if out.Kind != rules.Repair {
		t.Fatalf("Kind = %v, want Repair (normalization)", out.Kind)
	}
	if len(out.Repairs) != 1 || out.Repairs[0] != "Pasteur Institute" {
		t.Errorf("Repairs = %v, want [Pasteur Institute]", out.Repairs)
	}
}

func TestEvaluateMultiVersionRepairs(t *testing.T) {
	// Example 10: ϕ1 on r4 yields two versions — University of
	// Manchester and UC Berkeley.
	ex, cat := fixture(t)
	m := matcherFor(t, ex, cat, "phi1")
	out := m.Evaluate(ex.Dirty.Tuples[3])
	if out.Kind != rules.Repair {
		t.Fatalf("Kind = %v, want Repair", out.Kind)
	}
	if len(out.Repairs) != 2 {
		t.Fatalf("Repairs = %v, want 2 versions", out.Repairs)
	}
	// Repairs are ordered by similarity to the current value, so the
	// near-miss "University of Manchester" precedes "UC Berkeley".
	if out.Repairs[0] != "University of Manchester" || out.Repairs[1] != "UC Berkeley" {
		t.Errorf("Repairs = %v", out.Repairs)
	}
}

func TestEvaluateNoMatchWhenEvidenceBroken(t *testing.T) {
	// ϕ3 needs City evidence; on dirty r1 (City=Karcag, not where the
	// institute is) the evidence graph cannot match.
	ex, cat := fixture(t)
	m := matcherFor(t, ex, cat, "phi3")
	out := m.Evaluate(ex.Dirty.Tuples[0])
	if out.Kind != rules.NoMatch {
		t.Fatalf("Kind = %v, want NoMatch", out.Kind)
	}
}

func TestEvaluateCountryRepair(t *testing.T) {
	// ϕ3 on r3: Ukraine (birth country) -> United States.
	ex, cat := fixture(t)
	m := matcherFor(t, ex, cat, "phi3")
	out := m.Evaluate(ex.Dirty.Tuples[2])
	if out.Kind != rules.Repair {
		t.Fatalf("Kind = %v, want Repair", out.Kind)
	}
	if len(out.Repairs) != 1 || out.Repairs[0] != "United States" {
		t.Errorf("Repairs = %v", out.Repairs)
	}
}

func TestEvaluateOnCleanTupleIsPositive(t *testing.T) {
	ex, cat := fixture(t)
	for _, name := range []string{"phi1", "phi2", "phi3", "phi4"} {
		m := matcherFor(t, ex, cat, name)
		for i, tu := range ex.Truth.Tuples {
			out := m.Evaluate(tu)
			if out.Kind != rules.Positive {
				t.Errorf("%s on truth tuple %d: Kind = %v, want Positive", name, i, out.Kind)
			}
		}
	}
}

func TestNodeAndEdgeChecks(t *testing.T) {
	ex, cat := fixture(t)
	m := matcherFor(t, ex, cat, "phi2")
	r1 := ex.Dirty.Tuples[0]
	nameNode := m.Rule.Evidence[0]
	instNode := m.Rule.Evidence[1]
	if !m.NodeCheck(r1, nameNode) {
		t.Error("NodeCheck(Name) = false")
	}
	if !m.EdgeCheck(r1, rules.Edge{From: "w1", Rel: "worksAt", To: "w2"}, nameNode, instNode) {
		t.Error("EdgeCheck(worksAt) = false")
	}
	if m.EdgeCheck(r1, rules.Edge{From: "w1", Rel: "graduatedFrom", To: "w2"}, nameNode, instNode) {
		t.Error("EdgeCheck(graduatedFrom) = true, want false")
	}
	bogus := rules.Node{Name: "x", Col: "Name", Type: "no-such-class", Sim: similarity.Eq}
	if m.NodeCheck(r1, bogus) {
		t.Error("NodeCheck(bogus type) = true")
	}
}

func TestNodeKeySharing(t *testing.T) {
	a := rules.Node{Name: "x1", Col: "Name", Type: "T", Sim: similarity.Eq}
	b := rules.Node{Name: "w9", Col: "Name", Type: "T", Sim: similarity.Eq}
	if a.Key() != b.Key() {
		t.Error("nodes differing only in name must share a key")
	}
	c := rules.Node{Name: "x1", Col: "Name", Type: "T", Sim: similarity.EDK(1)}
	if a.Key() == c.Key() {
		t.Error("nodes with different sims must not share a key")
	}
	if rules.EdgeKey(a, "r", c) == rules.EdgeKey(a, "s", c) {
		t.Error("edges with different relationships must not share a key")
	}
}

func TestCatalogUnknownType(t *testing.T) {
	ex, _ := fixture(t)
	cat := rules.NewCatalog(ex.KB)
	if got := cat.Candidates("no-such-class", similarity.Eq, "x"); got != nil {
		t.Errorf("Candidates(unknown class) = %v", got)
	}
	if cat.HasCandidate("no-such-class", similarity.Eq, "x") {
		t.Error("HasCandidate(unknown class) = true")
	}
}

func TestCatalogTaxonomyCandidates(t *testing.T) {
	ex, _ := fixture(t)
	cat := rules.NewCatalog(ex.KB)
	// "person" has no direct instances; only via taxonomy.
	got := cat.Candidates("person", similarity.Eq, "Marie Curie")
	if len(got) != 1 || ex.KB.Name(got[0]) != "Marie Curie" {
		t.Errorf("Candidates(person) = %v", got)
	}
}

func TestRuleTextRoundTrip(t *testing.T) {
	ex, _ := fixture(t)
	var buf bytes.Buffer
	if err := rules.EncodeRules(&buf, ex.Rules); err != nil {
		t.Fatalf("EncodeRules: %v", err)
	}
	parsed, err := rules.ParseRules(&buf)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	if len(parsed) != len(ex.Rules) {
		t.Fatalf("parsed %d rules, want %d", len(parsed), len(ex.Rules))
	}
	for i, r := range parsed {
		orig := ex.Rules[i]
		if r.Name != orig.Name {
			t.Errorf("rule %d name %q vs %q", i, r.Name, orig.Name)
		}
		if err := r.Validate(ex.Schema); err != nil {
			t.Errorf("parsed rule %s invalid: %v", r.Name, err)
		}
		if len(r.Evidence) != len(orig.Evidence) || len(r.Edges) != len(orig.Edges) {
			t.Errorf("rule %s shape changed", r.Name)
		}
		if (r.Neg == nil) != (orig.Neg == nil) {
			t.Errorf("rule %s neg presence changed", r.Name)
		}
	}

	// Behaviour must survive the round trip: the parsed ϕ2 still
	// repairs r1[City].
	cat := rules.NewCatalog(ex.KB)
	m, err := rules.NewMatcher(parsed[1], cat, ex.Schema)
	if err != nil {
		t.Fatalf("NewMatcher(parsed phi2): %v", err)
	}
	out := m.Evaluate(ex.Dirty.Tuples[0])
	if out.Kind != rules.Repair || len(out.Repairs) != 1 || out.Repairs[0] != "Haifa" {
		t.Errorf("parsed phi2 outcome = %+v", out)
	}
}

func TestParseRulesErrors(t *testing.T) {
	cases := []string{
		"node a col=A type=T", // outside rule
		"rule r {",            // unclosed
		"rule r {\n}",         // no pos
		"rule r {\nrule q {",  // nested
		"}",                   // unmatched
		"rule r {\n pos p col=A type=T\n pos q col=A type=T\n}", // dup pos
		"rule r {\n bogus\n}",                                             // unknown directive
		"rule r {\n node a col=A\n pos p col=B type=T\n}",                 // missing type
		"rule r {\n node a col=A type=T sim=XX,1\n pos p col=B type=T\n}", // bad sim
		"rule r {\n edge a b\n}",                                          // short edge
		`rule r {` + "\n" + ` node a col="A type=T` + "\n}",               // unterminated quote
	}
	for _, c := range cases {
		if _, err := rules.ParseRules(strings.NewReader(c)); err == nil {
			t.Errorf("ParseRules(%q): want error", c)
		}
	}
}

func TestAnnotationOnlyRule(t *testing.T) {
	// A rule without a negative node marks but never repairs.
	ex, cat := fixture(t)
	r := &rules.DR{
		Name:     "annot",
		Evidence: []rules.Node{{Name: "a", Col: "Name", Type: "Nobel laureates in Chemistry", Sim: similarity.Eq}},
		Pos:      rules.Node{Name: "p", Col: "City", Type: "city", Sim: similarity.Eq},
		Edges:    []rules.Edge{{From: "a", Rel: "wasBornIn", To: "p"}},
	}
	m, err := rules.NewMatcher(r, cat, ex.Schema)
	if err != nil {
		t.Fatalf("NewMatcher: %v", err)
	}
	// r1[City] = Karcag = birth city: proof positive for this rule.
	if out := m.Evaluate(ex.Dirty.Tuples[0]); out.Kind != rules.Positive {
		t.Errorf("annotation rule on r1: %v, want Positive", out.Kind)
	}
	// r3[City] = Ithaca != birth city: no negative node, so NoMatch.
	if out := m.Evaluate(ex.Dirty.Tuples[2]); out.Kind != rules.NoMatch {
		t.Errorf("annotation rule on r3: %v, want NoMatch", out.Kind)
	}
}

func TestMatcherRejectsOversizedED(t *testing.T) {
	ex, cat := fixture(t)
	r := &rules.DR{
		Name:     "bad",
		Evidence: []rules.Node{{Name: "a", Col: "Name", Type: "person", Sim: similarity.Eq}},
		Pos:      rules.Node{Name: "p", Col: "City", Type: "city", Sim: similarity.EDK(rules.MaxEDThreshold + 1)},
		Edges:    []rules.Edge{{From: "a", Rel: "wasBornIn", To: "p"}},
	}
	if _, err := rules.NewMatcher(r, cat, ex.Schema); err == nil {
		t.Error("want error for oversized ED threshold")
	}
}
