package rules_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"detective/internal/rules"
	"detective/internal/similarity"
)

// randomRule generates a structurally valid random detective rule:
// 1-3 evidence nodes in a chain, a positive and (usually) a negative
// node attached to the first evidence node, sometimes a path node
// between evidence and the negative pole.
func randomRule(rng *rand.Rand, id int) *rules.DR {
	sims := []similarity.Spec{similarity.Eq, similarity.EDK(1), similarity.EDK(2),
		similarity.JaccardAtLeast(0.8), similarity.CosineAtLeast(0.7)}
	cols := []string{"A", "B", "C", "D", "E"}
	rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })

	nEv := 1 + rng.Intn(3)
	dr := &rules.DR{Name: fmt.Sprintf("rand_%d", id)}
	for i := 0; i < nEv; i++ {
		dr.Evidence = append(dr.Evidence, rules.Node{
			Name: fmt.Sprintf("e%d", i),
			Col:  cols[i],
			Type: fmt.Sprintf("type %d", rng.Intn(9)),
			Sim:  sims[rng.Intn(len(sims))],
		})
		if i > 0 {
			dr.Edges = append(dr.Edges, rules.Edge{
				From: fmt.Sprintf("e%d", i-1), Rel: fmt.Sprintf("rel%d", rng.Intn(7)),
				To: fmt.Sprintf("e%d", i),
			})
		}
	}
	posCol := cols[nEv]
	dr.Pos = rules.Node{Name: "p", Col: posCol, Type: fmt.Sprintf("ptype %d", rng.Intn(9)),
		Sim: sims[rng.Intn(len(sims))]}
	dr.Edges = append(dr.Edges, rules.Edge{From: "e0", Rel: "posRel", To: "p"})

	if rng.Intn(4) > 0 { // usually has negative semantics
		neg := rules.Node{Name: "n", Col: posCol, Type: fmt.Sprintf("ntype %d", rng.Intn(9)),
			Sim: sims[rng.Intn(len(sims))]}
		dr.Neg = &neg
		if rng.Intn(3) == 0 { // sometimes via a path node
			dr.Path = append(dr.Path, rules.PathNode{Name: "x", Type: "mid type"})
			dr.Edges = append(dr.Edges,
				rules.Edge{From: "e0", Rel: "hop1", To: "x"},
				rules.Edge{From: "x", Rel: "hop2", To: "n"})
		} else {
			dr.Edges = append(dr.Edges, rules.Edge{From: "e0", Rel: "negRel", To: "n"})
		}
	}
	return dr
}

// TestQuickRuleTextRoundTrip: any structurally valid rule survives
// encode → parse with identical structure and validity.
func TestQuickRuleTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		dr := randomRule(rng, trial)
		if err := dr.Validate(nil); err != nil {
			t.Fatalf("trial %d: generated rule invalid: %v\n%v", trial, err, dr)
		}
		var buf bytes.Buffer
		if err := rules.EncodeRules(&buf, []*rules.DR{dr}); err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		parsed, err := rules.ParseRules(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, buf.String())
		}
		if len(parsed) != 1 {
			t.Fatalf("trial %d: parsed %d rules", trial, len(parsed))
		}
		got := parsed[0]
		if got.Name != dr.Name || len(got.Evidence) != len(dr.Evidence) ||
			len(got.Edges) != len(dr.Edges) || len(got.Path) != len(dr.Path) ||
			(got.Neg == nil) != (dr.Neg == nil) {
			t.Fatalf("trial %d: structure changed:\n%v\nvs\n%v", trial, got, dr)
		}
		for i := range dr.Evidence {
			if got.Evidence[i] != dr.Evidence[i] {
				t.Fatalf("trial %d: evidence[%d] %v != %v", trial, i, got.Evidence[i], dr.Evidence[i])
			}
		}
		if got.Pos != dr.Pos {
			t.Fatalf("trial %d: pos %v != %v", trial, got.Pos, dr.Pos)
		}
		if dr.Neg != nil && *got.Neg != *dr.Neg {
			t.Fatalf("trial %d: neg %v != %v", trial, *got.Neg, *dr.Neg)
		}
		for i := range dr.Edges {
			if got.Edges[i] != dr.Edges[i] {
				t.Fatalf("trial %d: edge[%d] %v != %v", trial, i, got.Edges[i], dr.Edges[i])
			}
		}
		if err := got.Validate(nil); err != nil {
			t.Fatalf("trial %d: parsed rule invalid: %v", trial, err)
		}
	}
}
