// Package consistency implements the practical side of the paper's
// §III-C: deciding whether a set of detective rules is consistent —
// i.e. whether every application order reaches the same fixpoint (the
// repair is unique, Church-Rosser).
//
// The general problem is coNP-complete (Theorem 1), but with the
// dataset at hand it is PTIME (Corollary 2): for each tuple there are
// at most |Σ|^|R| application orders, and |R| is a constant. Check
// follows the paper's experimental procedure — run the rules over
// (sample) tuples under multiple distinct orders and compare the
// fixpoints; disagreements are reported for the user to double-check
// the selected rules.
package consistency

import (
	"fmt"
	"math/rand"
	"sort"

	"detective/internal/relation"
	"detective/internal/repair"
)

// Violation reports a tuple whose repair fixpoint depends on the rule
// application order.
type Violation struct {
	TupleIndex int
	// Fixpoints holds the distinct results observed, first the one
	// from the engine's default order.
	Fixpoints []*relation.Tuple
	// Orders[i] is the rule order that produced Fixpoints[i].
	Orders [][]int
}

func (v Violation) String() string {
	return fmt.Sprintf("tuple %d has %d distinct fixpoints (orders %v)",
		v.TupleIndex, len(v.Fixpoints), v.Orders)
}

// Check runs every tuple of tb through the engine under up to
// maxOrders distinct rule orders and reports order-dependent results.
// maxOrders <= 0 defaults to 24. When |Σ|! <= maxOrders all
// permutations are tried (the exact Corollary 2 procedure); otherwise
// a deterministic family of rotations and reversals is used, which in
// practice exposes order dependence quickly because conflicting rules
// are tried in both relative orders.
func Check(e *repair.Engine, tb *relation.Table, maxOrders int) []Violation {
	if maxOrders <= 0 {
		maxOrders = 24
	}
	orders := ordersFor(e.NumRules(), maxOrders)
	var out []Violation
	for ti, tu := range tb.Tuples {
		var fixpoints []*relation.Tuple
		var witness [][]int
		for _, ord := range orders {
			got := e.RepairWithOrder(tu, ord)
			dup := false
			for _, f := range fixpoints {
				if f.EqualMarked(got) {
					dup = true
					break
				}
			}
			if !dup {
				fixpoints = append(fixpoints, got)
				witness = append(witness, ord)
			}
		}
		if len(fixpoints) > 1 {
			out = append(out, Violation{TupleIndex: ti, Fixpoints: fixpoints, Orders: witness})
		}
	}
	return out
}

// IsConsistent reports whether Check finds no violations.
func IsConsistent(e *repair.Engine, tb *relation.Table, maxOrders int) bool {
	return len(Check(e, tb, maxOrders)) == 0
}

// ordersFor produces up to maxOrders distinct orders of n rules: all
// n! permutations when they fit, otherwise rotations of the identity
// and of its reversal.
func ordersFor(n, maxOrders int) [][]int {
	if fact := factorialCapped(n, maxOrders+1); fact <= maxOrders {
		return permutations(n)
	}
	var out [][]int
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	for r := 0; r < n && len(out) < maxOrders; r++ {
		out = append(out, rotate(id, r))
	}
	rev := make([]int, n)
	for i := range rev {
		rev[i] = n - 1 - i
	}
	for r := 0; r < n && len(out) < maxOrders; r++ {
		out = append(out, rotate(rev, r))
	}
	return out
}

func rotate(a []int, r int) []int {
	n := len(a)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = a[(i+r)%n]
	}
	return out
}

func factorialCapped(n, cap int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
		if f >= cap {
			return cap
		}
	}
	return f
}

// permutations enumerates all permutations of 0..n-1 (Heap's
// algorithm), in a deterministic order.
func permutations(n int) [][]int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	var out [][]int
	var gen func(k int)
	gen = func(k int) {
		if k == 1 {
			out = append(out, append([]int(nil), a...))
			return
		}
		for i := 0; i < k; i++ {
			gen(k - 1)
			if k%2 == 0 {
				a[i], a[k-1] = a[k-1], a[i]
			} else {
				a[0], a[k-1] = a[k-1], a[0]
			}
		}
	}
	gen(n)
	return out
}

// CheckSample is Check over a deterministic sample of sampleSize rows
// (every row when sampleSize >= len(tb)), the scale-friendly form of
// the paper's practice: "we run them on random sample tuples to check
// whether they always compute the same results" (§III-C).
func CheckSample(e *repair.Engine, tb *relation.Table, sampleSize, maxOrders int, seed int64) []Violation {
	if sampleSize <= 0 || sampleSize >= tb.Len() {
		return Check(e, tb, maxOrders)
	}
	rng := rand.New(rand.NewSource(seed))
	sample := &relation.Table{Schema: tb.Schema}
	idx := rng.Perm(tb.Len())[:sampleSize]
	sort.Ints(idx)
	remap := make([]int, 0, sampleSize)
	for _, i := range idx {
		sample.Tuples = append(sample.Tuples, tb.Tuples[i])
		remap = append(remap, i)
	}
	vs := Check(e, sample, maxOrders)
	for i := range vs {
		vs[i].TupleIndex = remap[vs[i].TupleIndex]
	}
	return vs
}
