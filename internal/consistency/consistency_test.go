package consistency_test

import (
	"testing"

	"detective/internal/consistency"
	"detective/internal/dataset"
	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/rules"
	"detective/internal/similarity"
)

func TestPaperRulesAreConsistent(t *testing.T) {
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if v := consistency.Check(e, ex.Dirty, 0); len(v) != 0 {
		t.Fatalf("paper rules inconsistent: %v", v)
	}
	if !consistency.IsConsistent(e, ex.Truth, 24) {
		t.Fatal("paper rules inconsistent on clean data")
	}
}

// conflictingFixture builds two rules that disagree on what City
// means (lives-in vs born-in), each treating the other's semantics as
// the negative one — a textbook inconsistent pair.
func conflictingFixture(t *testing.T) (*repair.Engine, *relation.Table) {
	t.Helper()
	g := kb.New()
	g.AddType("p", "person")
	g.AddType("C1", "city")
	g.AddType("C2", "city")
	g.AddTriple("p", "livesIn", "C1")
	g.AddTriple("p", "wasBornIn", "C2")

	schema := relation.NewSchema("R", "Name", "City")
	mk := func(name, posRel, negRel string) *rules.DR {
		neg := rules.Node{Name: "n", Col: "City", Type: "city", Sim: similarity.Eq}
		return &rules.DR{
			Name:     name,
			Evidence: []rules.Node{{Name: "e", Col: "Name", Type: "person", Sim: similarity.Eq}},
			Pos:      rules.Node{Name: "p", Col: "City", Type: "city", Sim: similarity.Eq},
			Neg:      &neg,
			Edges: []rules.Edge{
				{From: "e", Rel: posRel, To: "p"},
				{From: "e", Rel: negRel, To: "n"},
			},
		}
	}
	e, err := repair.NewEngine([]*rules.DR{
		mk("lives", "livesIn", "wasBornIn"),
		mk("born", "wasBornIn", "livesIn"),
	}, g, schema)
	if err != nil {
		t.Fatal(err)
	}
	tb := relation.NewTable(schema)
	tb.Append("p", "C2")
	return e, tb
}

func TestDetectsInconsistentRules(t *testing.T) {
	e, tb := conflictingFixture(t)
	vs := consistency.Check(e, tb, 0)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want 1", vs)
	}
	v := vs[0]
	if v.TupleIndex != 0 || len(v.Fixpoints) < 2 {
		t.Fatalf("unexpected violation %v", v)
	}
	if consistency.IsConsistent(e, tb, 0) {
		t.Fatal("IsConsistent must be false")
	}
	if v.String() == "" {
		t.Fatal("empty violation description")
	}
}

func TestCheckManyRulesUsesRotations(t *testing.T) {
	// With 5 rules and maxOrders 8, the checker cannot enumerate 120
	// permutations; it must still terminate and find no violations for
	// a consistent set.
	ex := dataset.NewPaperExample()
	five := append([]*rules.DR{}, ex.Rules...)
	annot := &rules.DR{
		Name:     "annot",
		Evidence: []rules.Node{{Name: "a", Col: "Name", Type: "Nobel laureates in Chemistry", Sim: similarity.Eq}},
		Pos:      rules.Node{Name: "p", Col: "DOB", Type: kb.LiteralClass, Sim: similarity.Eq},
		Edges:    []rules.Edge{{From: "a", Rel: "bornOnDate", To: "p"}},
	}
	five = append(five, annot)
	e, err := repair.NewEngine(five, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if vs := consistency.Check(e, ex.Dirty, 8); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestAnalyzeFlagsOpposedRules(t *testing.T) {
	// The lives-in/born-in pair: each rule's positive semantics is the
	// other's negative semantics.
	mk := func(name, posRel, negRel string) *rules.DR {
		neg := rules.Node{Name: "n", Col: "City", Type: "city", Sim: similarity.Eq}
		return &rules.DR{
			Name:     name,
			Evidence: []rules.Node{{Name: "e", Col: "Name", Type: "person", Sim: similarity.Eq}},
			Pos:      rules.Node{Name: "p", Col: "City", Type: "city", Sim: similarity.Eq},
			Neg:      &neg,
			Edges: []rules.Edge{
				{From: "e", Rel: posRel, To: "p"},
				{From: "e", Rel: negRel, To: "n"},
			},
		}
	}
	ws := consistency.Analyze([]*rules.DR{
		mk("lives", "livesIn", "wasBornIn"),
		mk("born", "wasBornIn", "livesIn"),
	})
	if len(ws) != 1 {
		t.Fatalf("warnings = %v, want 1", ws)
	}
	if ws[0].String() == "" {
		t.Fatal("empty warning text")
	}
}

func TestAnalyzeFlagsDivergentRepairs(t *testing.T) {
	mk := func(name, posRel string) *rules.DR {
		neg := rules.Node{Name: "n", Col: "City", Type: "city", Sim: similarity.Eq}
		return &rules.DR{
			Name:     name,
			Evidence: []rules.Node{{Name: "e", Col: "Name", Type: "person", Sim: similarity.Eq}},
			Pos:      rules.Node{Name: "p", Col: "City", Type: "city", Sim: similarity.Eq},
			Neg:      &neg,
			Edges: []rules.Edge{
				{From: "e", Rel: posRel, To: "p"},
				{From: "e", Rel: "visited", To: "n"},
			},
		}
	}
	ws := consistency.Analyze([]*rules.DR{mk("a", "livesIn"), mk("b", "grewUpIn")})
	if len(ws) != 1 {
		t.Fatalf("warnings = %v, want 1 (divergent corrections)", ws)
	}
}

func TestAnalyzePassesPaperRules(t *testing.T) {
	ex := dataset.NewPaperExample()
	if ws := consistency.Analyze(ex.Rules); len(ws) != 0 {
		t.Fatalf("paper rules flagged: %v", ws)
	}
}

func TestAnalyzeIgnoresDisjointColumns(t *testing.T) {
	ex := dataset.NewPaperExample()
	// Rules over different columns never warn, whatever their shape.
	if ws := consistency.Analyze(ex.Rules[:2]); len(ws) != 0 {
		t.Fatalf("disjoint rules flagged: %v", ws)
	}
}

func TestCheckSample(t *testing.T) {
	e, tb := conflictingFixture(t)
	// Pad the table with clean rows so sampling has something to skip.
	for i := 0; i < 30; i++ {
		tb.Append("p", "C1")
	}
	vs := consistency.CheckSample(e, tb, 10, 4, 7)
	// The sample may or may not include the conflicting row 0; either
	// way indices must refer to the original table.
	for _, v := range vs {
		if v.TupleIndex < 0 || v.TupleIndex >= tb.Len() {
			t.Fatalf("violation index %d out of range", v.TupleIndex)
		}
	}
	// Full-size sample equals Check.
	all := consistency.CheckSample(e, tb, tb.Len(), 4, 7)
	direct := consistency.Check(e, tb, 4)
	if len(all) != len(direct) {
		t.Fatalf("full sample %d violations vs direct %d", len(all), len(direct))
	}
}
