package consistency

import (
	"fmt"

	"detective/internal/rules"
)

// Warning flags a structural interaction between two rules that can
// produce order-dependent repairs. Static analysis is sound but not
// complete (the general problem is coNP-complete, Theorem 1): a
// warning is a candidate conflict for Check to confirm on data, and
// an empty report means the common conflict patterns are absent, not
// that the set is provably consistent.
type Warning struct {
	RuleA, RuleB string
	Reason       string
}

func (w Warning) String() string {
	return fmt.Sprintf("%s vs %s: %s", w.RuleA, w.RuleB, w.Reason)
}

// Analyze inspects every rule pair for the two classic conflict
// shapes:
//
//  1. *Opposed semantics*: both rules repair the same column, and one
//     rule's positive semantics (type + incident relationships) is the
//     other's negative semantics. Whichever applies first wins — the
//     lives-in/born-in flip-flop of the paper's consistency examples.
//  2. *Divergent repairs*: both rules repair the same column with
//     different positive semantics, so a tuple matching both negative
//     sides can receive two different corrections.
//
// Rules over disjoint columns never conflict (applying one cannot
// affect the other's evidence unless declared, which the rule graph
// already orders).
func Analyze(drs []*rules.DR) []Warning {
	var out []Warning
	for i := 0; i < len(drs); i++ {
		for j := i + 1; j < len(drs); j++ {
			a, b := drs[i], drs[j]
			if a.PosCol() != b.PosCol() {
				continue
			}
			if w, ok := opposed(a, b); ok {
				out = append(out, w)
				continue
			}
			if w, ok := opposed(b, a); ok {
				out = append(out, w)
				continue
			}
			if !sameSignature(posSignature(a), posSignature(b)) {
				out = append(out, Warning{
					RuleA: a.Name, RuleB: b.Name,
					Reason: fmt.Sprintf("both repair column %q with different positive semantics; a tuple matching both negative sides can receive divergent corrections", a.PosCol()),
				})
			}
		}
	}
	return out
}

// signature is the semantic shape of one pole: its KB type plus the
// multiset of (relationship, direction) labels on its incident edges.
type signature struct {
	typ   string
	edges map[string]int
}

func poleSignature(r *rules.DR, pole rules.Node, incident []rules.Edge) signature {
	s := signature{typ: pole.Type, edges: make(map[string]int)}
	for _, e := range incident {
		dir := "in"
		if e.From == pole.Name {
			dir = "out"
		}
		s.edges[e.Rel+"/"+dir]++
	}
	return s
}

func posSignature(r *rules.DR) signature { return poleSignature(r, r.Pos, r.PosEdges()) }

func negSignature(r *rules.DR) (signature, bool) {
	if r.Neg == nil {
		return signature{}, false
	}
	return poleSignature(r, *r.Neg, r.NegEdges()), true
}

func sameSignature(a, b signature) bool {
	if a.typ != b.typ || len(a.edges) != len(b.edges) {
		return false
	}
	for k, n := range a.edges {
		if b.edges[k] != n {
			return false
		}
	}
	return true
}

// opposed reports whether a's positive semantics is b's negative
// semantics (a "correct" value under a is a "wrong" value under b).
func opposed(a, b *rules.DR) (Warning, bool) {
	bn, ok := negSignature(b)
	if !ok {
		return Warning{}, false
	}
	if sameSignature(posSignature(a), bn) {
		return Warning{
			RuleA: a.Name, RuleB: b.Name,
			Reason: fmt.Sprintf("the positive semantics of %s (type %q) is the negative semantics of %s on column %q: whichever rule applies first decides the value",
				a.Name, a.Pos.Type, b.Name, a.PosCol()),
		}, true
	}
	return Warning{}, false
}
