package rulegen

import (
	"fmt"
	"sort"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rules"
)

// S1 of the paper's algorithm computes "a set G+ of schema-level
// matching graphs", not a single one: a column can plausibly carry
// several KB types (taxonomy ancestors, overlapping classes), and the
// user picks among the resulting candidate rules. GenerateCandidates
// implements that set semantics: for every target attribute it emits
// one candidate DR per viable (positive-graph variant, negative
// semantics) combination, ranked by the type support of the variant.
// Generate returns only the top candidate per attribute.

// GenerateCandidates produces, per target attribute, the ranked list
// of candidate detective rules. cfg.TypeCandidates controls how many
// type alternatives per column are explored (default 1: only the
// best-supported type, which reduces to Generate's behaviour).
func GenerateCandidates(g *kb.Graph, schema *relation.Schema, positives *relation.Table,
	negatives map[string]*relation.Table, cfg Config) (map[string][]*rules.DR, error) {

	cfg = cfg.withDefaults()
	if positives == nil || positives.Len() == 0 {
		return nil, fmt.Errorf("rulegen: no positive examples")
	}
	variants, err := DiscoverGraphs(g, schema, positives, cfg)
	if err != nil {
		return nil, err
	}

	var attrs []string
	for a := range negatives {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)

	out := make(map[string][]*rules.DR)
	for _, attr := range attrs {
		if !schema.Has(attr) {
			return nil, fmt.Errorf("rulegen: negative examples for unknown attribute %q", attr)
		}
		neg := negatives[attr]
		if neg == nil || neg.Len() == 0 {
			continue
		}
		seen := make(map[string]bool)
		for _, pos := range variants {
			dr, err := mergeRule(g, schema, pos, neg, attr, cfg)
			if err != nil {
				return nil, fmt.Errorf("rulegen: attribute %s: %w", attr, err)
			}
			if dr == nil {
				continue
			}
			sig := ruleSignature(dr)
			if seen[sig] {
				continue
			}
			seen[sig] = true
			if n := len(out[attr]); n > 0 {
				dr.Name = fmt.Sprintf("gen_%s_%d", attr, n+1)
			}
			out[attr] = append(out[attr], dr)
		}
	}
	return out, nil
}

// ruleSignature fingerprints a rule's structure for deduplication
// across graph variants that happen to merge identically.
func ruleSignature(dr *rules.DR) string {
	parts := make([]string, 0, len(dr.Evidence)+len(dr.Edges)+2)
	for _, n := range dr.Evidence {
		parts = append(parts, "e:"+n.Key())
	}
	parts = append(parts, "p:"+dr.Pos.Key())
	if dr.Neg != nil {
		parts = append(parts, "n:"+dr.Neg.Key())
	}
	for _, e := range dr.Edges {
		parts = append(parts, "g:"+e.From+"/"+e.Rel+"/"+e.To)
	}
	sort.Strings(parts)
	out := ""
	for _, p := range parts {
		out += p + "|"
	}
	return out
}

// DiscoverGraphs runs S1 with type alternatives: the first returned
// graph uses the best-supported type for every column; each further
// graph swaps exactly one column to its next-best type (so the number
// of graphs is bounded by 1 + columns × (TypeCandidates-1)).
func DiscoverGraphs(g *kb.Graph, schema *relation.Schema, examples *relation.Table, cfg Config) ([]*Discovered, error) {
	cfg = cfg.withDefaults()
	k := cfg.TypeCandidates
	if k < 1 {
		k = 1
	}

	// Per column: matched instances per row and the ranked types.
	colInsts := make(map[string][][]kb.ID, schema.Arity())
	ranked := make(map[string][]typeChoice, schema.Arity())
	for _, col := range schema.Attrs {
		sim := cfg.simFor(col)
		insts := make([][]kb.ID, examples.Len())
		for i, tu := range examples.Tuples {
			insts[i] = matchInstances(g, tu.Values[schema.MustCol(col)], sim)
		}
		colInsts[col] = insts
		ranked[col] = rankedTypes(g, insts, k, cfg.MinTypeSupport)
	}

	base := make(map[string]typeChoice, len(ranked))
	for col, choices := range ranked {
		if len(choices) > 0 {
			base[col] = choices[0]
		}
	}
	var out []*Discovered
	out = append(out, assembleGraph(g, schema, examples, cfg, colInsts, base))

	// One-column swaps to alternative types.
	for _, col := range schema.Attrs {
		for alt := 1; alt < len(ranked[col]) && alt < k; alt++ {
			variant := make(map[string]typeChoice, len(base))
			for c, t := range base {
				variant[c] = t
			}
			variant[col] = ranked[col][alt]
			out = append(out, assembleGraph(g, schema, examples, cfg, colInsts, variant))
		}
	}
	return out, nil
}

// typeChoice is a ranked column-type candidate.
type typeChoice struct {
	cls     kb.ID
	support float64
}

// rankedTypes returns up to k classes ordered by (coverage, then
// specificity, then name), all meeting the support threshold.
func rankedTypes(g *kb.Graph, insts [][]kb.ID, k int, minSupport float64) []typeChoice {
	cover := make(map[kb.ID]int)
	for _, row := range insts {
		rowClasses := make(map[kb.ID]bool)
		for _, inst := range row {
			for _, c := range g.TypesOf(inst) {
				rowClasses[c] = true
			}
		}
		for c := range rowClasses {
			cover[c]++
		}
	}
	classes := make([]kb.ID, 0, len(cover))
	for c := range cover {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool {
		a, b := classes[i], classes[j]
		if cover[a] != cover[b] {
			return cover[a] > cover[b]
		}
		ea, eb := len(g.InstancesOf(a)), len(g.InstancesOf(b))
		if ea != eb {
			return ea < eb // more specific first
		}
		return g.Name(a) < g.Name(b)
	})
	var out []typeChoice
	for _, c := range classes {
		support := float64(cover[c]) / float64(len(insts))
		if support < minSupport {
			break // sorted by coverage: the rest are below threshold too
		}
		out = append(out, typeChoice{cls: c, support: support})
		if len(out) == k {
			break
		}
	}
	return out
}

// assembleGraph builds one Discovered graph for a fixed per-column
// type choice, re-running relationship discovery.
func assembleGraph(g *kb.Graph, schema *relation.Schema, examples *relation.Table,
	cfg Config, colInsts map[string][][]kb.ID, choice map[string]typeChoice) *Discovered {

	d := &Discovered{
		TypeSupport: make(map[string]float64),
		RelSupport:  make(map[string]float64),
	}
	for _, col := range schema.Attrs {
		tc, ok := choice[col]
		if !ok {
			continue
		}
		d.Graph.Nodes = append(d.Graph.Nodes, rules.Node{
			Name: "c" + col,
			Col:  col,
			Type: g.Name(tc.cls),
			Sim:  cfg.simFor(col),
		})
		d.TypeSupport[col] = tc.support
	}
	typed := d.Graph.Nodes
	for i := range typed {
		for j := range typed {
			if i == j {
				continue
			}
			from, to := typed[i], typed[j]
			for rel, support := range relSupport(g, colInsts[from.Col], colInsts[to.Col], examples.Len()) {
				if support < cfg.MinRelSupport {
					continue
				}
				d.Graph.Edges = append(d.Graph.Edges, rules.Edge{From: from.Name, To: to.Name, Rel: rel})
				d.RelSupport[from.Name+"\x00"+rel+"\x00"+to.Name] = support
			}
		}
	}
	sort.Slice(d.Graph.Edges, func(a, b int) bool {
		ea, eb := d.Graph.Edges[a], d.Graph.Edges[b]
		if ea.From != eb.From {
			return ea.From < eb.From
		}
		if ea.To != eb.To {
			return ea.To < eb.To
		}
		return ea.Rel < eb.Rel
	})
	return d
}
