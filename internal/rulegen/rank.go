package rulegen

import (
	"fmt"
	"sort"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/rules"
)

// Score grades one candidate rule on a labelled validation sample —
// the quantitative aid for the human review step the paper requires
// before candidate rules are trusted ("the user can manually pick",
// §III-A).
type Score struct {
	Rule *rules.DR
	// Repairs and CorrectRepairs count cell rewrites when the rule is
	// applied alone to the dirty sample.
	Repairs        int
	CorrectRepairs int
	// WrongRepairs = Repairs - CorrectRepairs.
	WrongRepairs int
	// Marks counts cells the rule proves correct; WrongMarks counts
	// marks placed on cells that are actually erroneous.
	Marks      int
	WrongMarks int
}

// Precision is the fraction of the rule's repairs that match ground
// truth (1 when the rule repaired nothing).
func (s Score) Precision() float64 {
	if s.Repairs == 0 {
		return 1
	}
	return float64(s.CorrectRepairs) / float64(s.Repairs)
}

func (s Score) String() string {
	return fmt.Sprintf("%s: repairs=%d correct=%d (P=%.2f) marks=%d wrong-marks=%d",
		s.Rule.Name, s.Repairs, s.CorrectRepairs, s.Precision(), s.Marks, s.WrongMarks)
}

// Rank applies each candidate rule *individually* to the dirty sample
// and grades its repairs and marks against the ground truth. Results
// are ordered most-trustworthy first: higher precision, then more
// correct repairs, then fewer wrong marks. Rules whose precision
// falls below 1 deserve scrutiny before being adopted.
func Rank(cands []*rules.DR, g *kb.Graph, schema *relation.Schema,
	truth, dirty *relation.Table) ([]Score, error) {

	if truth.Len() != dirty.Len() {
		return nil, fmt.Errorf("rulegen: truth has %d rows, dirty has %d", truth.Len(), dirty.Len())
	}
	scores := make([]Score, 0, len(cands))
	for _, dr := range cands {
		e, err := repair.NewEngine([]*rules.DR{dr}, g, schema)
		if err != nil {
			return nil, fmt.Errorf("rulegen: rule %s: %w", dr.Name, err)
		}
		s := Score{Rule: dr}
		repaired := e.RepairTable(dirty, true)
		for i := range repaired.Tuples {
			for j, got := range repaired.Tuples[i].Values {
				if got != dirty.Tuples[i].Values[j] {
					s.Repairs++
					if got == truth.Tuples[i].Values[j] {
						s.CorrectRepairs++
					}
				}
				if repaired.Tuples[i].Marked[j] {
					s.Marks++
					if got != truth.Tuples[i].Values[j] {
						s.WrongMarks++
					}
				}
			}
		}
		s.WrongRepairs = s.Repairs - s.CorrectRepairs
		scores = append(scores, s)
	}
	sort.SliceStable(scores, func(i, j int) bool {
		a, b := scores[i], scores[j]
		if a.Precision() != b.Precision() {
			return a.Precision() > b.Precision()
		}
		if a.CorrectRepairs != b.CorrectRepairs {
			return a.CorrectRepairs > b.CorrectRepairs
		}
		return a.WrongMarks < b.WrongMarks
	})
	return scores, nil
}
