// Package rulegen implements the example-driven generation of
// detective rules described in §III-A of the paper: from a set of
// positive tuple examples (all values correct) and, per target
// attribute, a set of negative examples (only that attribute wrong),
// it discovers schema-level matching graphs for both and merges pairs
// that differ in exactly one node into candidate detective rules.
//
// As in the paper, the output is a *candidate* set meant to be
// reviewed by a user before being applied (and checked with the
// consistency package); the generator is deliberately conservative
// and fully deterministic.
package rulegen

import (
	"fmt"
	"sort"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// Config controls discovery thresholds.
type Config struct {
	// MinTypeSupport is the minimum fraction of example tuples whose
	// value in a column must match an instance of a class for the
	// class to be considered that column's type. Default 0.8.
	MinTypeSupport float64
	// MinRelSupport is the minimum fraction of example tuples that
	// must witness a relationship between two typed columns for the
	// relationship to be adopted. Default 0.8.
	MinRelSupport float64
	// Sims optionally overrides the matching operation per column;
	// the default is exact equality everywhere.
	Sims map[string]similarity.Spec
	// MaxEvidence bounds the number of evidence nodes per generated
	// rule (0 = unbounded): columns closest to the target attribute in
	// the discovered graph are kept first.
	MaxEvidence int
	// TypeCandidates explores up to this many ranked KB types per
	// column when generating candidate rules (GenerateCandidates);
	// 0 or 1 keeps only the best-supported type.
	TypeCandidates int
}

func (c Config) withDefaults() Config {
	if c.MinTypeSupport == 0 {
		c.MinTypeSupport = 0.8
	}
	if c.MinRelSupport == 0 {
		c.MinRelSupport = 0.8
	}
	return c
}

func (c Config) simFor(col string) similarity.Spec {
	if sp, ok := c.Sims[col]; ok {
		return sp
	}
	return similarity.Eq
}

// Generate produces candidate detective rules for every target
// attribute that has negative examples. positives must contain only
// correct tuples; negatives[A] must contain tuples wrong exactly in
// attribute A. Attributes without negative examples contribute no
// rule (annotation-only rules can be built from DiscoverGraph
// directly).
func Generate(g *kb.Graph, schema *relation.Schema, positives *relation.Table,
	negatives map[string]*relation.Table, cfg Config) ([]*rules.DR, error) {

	cfg = cfg.withDefaults()
	if positives == nil || positives.Len() == 0 {
		return nil, fmt.Errorf("rulegen: no positive examples")
	}
	// S1: schema-level matching graph for the positive examples.
	pos, err := DiscoverGraph(g, schema, positives, cfg)
	if err != nil {
		return nil, err
	}

	var attrs []string
	for a := range negatives {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)

	var out []*rules.DR
	for _, attr := range attrs {
		if !schema.Has(attr) {
			return nil, fmt.Errorf("rulegen: negative examples for unknown attribute %q", attr)
		}
		neg := negatives[attr]
		if neg == nil || neg.Len() == 0 {
			continue
		}
		// S2: discover the negative semantics of attr — the type of
		// the wrong values and how they connect to the (correct)
		// evidence columns.
		dr, err := mergeRule(g, schema, pos, neg, attr, cfg)
		if err != nil {
			return nil, fmt.Errorf("rulegen: attribute %s: %w", attr, err)
		}
		if dr != nil {
			out = append(out, dr)
		}
	}
	return out, nil
}

// Discovered is a schema-level matching graph found from examples,
// with per-node and per-edge support statistics.
type Discovered struct {
	Graph       rules.Graph
	TypeSupport map[string]float64 // column -> support of its chosen type
	RelSupport  map[string]float64 // "from\x00rel\x00to" -> support
}

// DiscoverGraph runs S1 of the generation algorithm: it types every
// column by the most specific class whose instances cover enough of
// the column's values, then finds relationships between typed column
// pairs, and returns the resulting schema-level matching graph
// restricted to typed columns.
func DiscoverGraph(g *kb.Graph, schema *relation.Schema, examples *relation.Table, cfg Config) (*Discovered, error) {
	cfg = cfg.withDefaults()
	d := &Discovered{
		TypeSupport: make(map[string]float64),
		RelSupport:  make(map[string]float64),
	}

	// Per column: candidate instances for every tuple value, then the
	// best-supported class.
	colInsts := make(map[string][][]kb.ID, schema.Arity())
	for _, col := range schema.Attrs {
		sim := cfg.simFor(col)
		insts := make([][]kb.ID, examples.Len())
		for i, tu := range examples.Tuples {
			insts[i] = matchInstances(g, tu.Values[schema.MustCol(col)], sim)
		}
		colInsts[col] = insts

		cls, support := bestType(g, insts)
		if cls == kb.Invalid || support < cfg.MinTypeSupport {
			continue
		}
		d.Graph.Nodes = append(d.Graph.Nodes, rules.Node{
			Name: "c" + col,
			Col:  col,
			Type: g.Name(cls),
			Sim:  sim,
		})
		d.TypeSupport[col] = support
	}

	// Relationships between typed columns.
	typed := d.Graph.Nodes
	for i := range typed {
		for j := range typed {
			if i == j {
				continue
			}
			from, to := typed[i], typed[j]
			for rel, support := range relSupport(g, colInsts[from.Col], colInsts[to.Col], examples.Len()) {
				if support < cfg.MinRelSupport {
					continue
				}
				d.Graph.Edges = append(d.Graph.Edges, rules.Edge{From: from.Name, To: to.Name, Rel: rel})
				d.RelSupport[from.Name+"\x00"+rel+"\x00"+to.Name] = support
			}
		}
	}
	sort.Slice(d.Graph.Edges, func(a, b int) bool {
		ea, eb := d.Graph.Edges[a], d.Graph.Edges[b]
		if ea.From != eb.From {
			return ea.From < eb.From
		}
		if ea.To != eb.To {
			return ea.To < eb.To
		}
		return ea.Rel < eb.Rel
	})
	return d, nil
}

// matchInstances finds the KB instances matching value under sim.
// Exact matching uses the interning table; fuzzy matching scans the
// instance space once per value, which is acceptable for the small
// example sets rule generation runs on.
func matchInstances(g *kb.Graph, value string, sim similarity.Spec) []kb.ID {
	if !sim.Fuzzy() {
		id := g.Lookup(value)
		if id == kb.Invalid {
			return nil
		}
		return []kb.ID{id}
	}
	var out []kb.ID
	for i := 0; i < g.NumNodes(); i++ {
		id := kb.ID(i)
		if k := g.KindOf(id); k != kb.KindInstance && k != kb.KindLiteral {
			continue
		}
		if sim.Match(value, g.Name(id)) {
			out = append(out, id)
		}
	}
	return out
}

// bestType returns the class covering the most example rows; ties are
// broken towards the most specific class (smallest extent), then by
// name for determinism.
func bestType(g *kb.Graph, insts [][]kb.ID) (kb.ID, float64) {
	cover := make(map[kb.ID]int)
	for _, row := range insts {
		rowClasses := make(map[kb.ID]bool)
		for _, inst := range row {
			for _, c := range g.TypesOf(inst) {
				rowClasses[c] = true
			}
		}
		for c := range rowClasses {
			cover[c]++
		}
	}
	best := kb.Invalid
	bestCover := 0
	for c, n := range cover {
		if better(g, c, n, best, bestCover) {
			best, bestCover = c, n
		}
	}
	if best == kb.Invalid {
		return kb.Invalid, 0
	}
	return best, float64(bestCover) / float64(len(insts))
}

func better(g *kb.Graph, c kb.ID, n int, best kb.ID, bestCover int) bool {
	if best == kb.Invalid {
		return true
	}
	if n != bestCover {
		return n > bestCover
	}
	ce, be := len(g.InstancesOf(c)), len(g.InstancesOf(best))
	if ce != be {
		return ce < be // more specific wins
	}
	return g.Name(c) < g.Name(best)
}

// relSupport counts, for each predicate, the fraction of rows where
// some matched instance of the from-column links to some matched
// instance of the to-column.
func relSupport(g *kb.Graph, from, to [][]kb.ID, rows int) map[string]float64 {
	count := make(map[kb.ID]int)
	for r := 0; r < rows; r++ {
		toSet := make(map[kb.ID]bool, len(to[r]))
		for _, x := range to[r] {
			toSet[x] = true
		}
		seen := make(map[kb.ID]bool)
		for _, f := range from[r] {
			for _, e := range g.Out(f) {
				if toSet[e.To] && !seen[e.Pred] {
					seen[e.Pred] = true
					count[e.Pred]++
				}
			}
		}
	}
	out := make(map[string]float64, len(count))
	for p, n := range count {
		out[g.Name(p)] = float64(n) / float64(rows)
	}
	return out
}

// mergeRule runs S2+S3 for one target attribute: discover the
// negative graph from the negative examples and merge it with the
// positive graph into one detective rule. It returns nil (no error)
// when the evidence is insufficient — e.g. the positive graph does not
// connect the attribute, or the wrong values have no discoverable
// semantics — matching the paper's conservative stance.
func mergeRule(g *kb.Graph, schema *relation.Schema, pos *Discovered,
	neg *relation.Table, attr string, cfg Config) (*rules.DR, error) {

	// Positive node and its incident edges come from the positive graph.
	var posNode *rules.Node
	for i := range pos.Graph.Nodes {
		if pos.Graph.Nodes[i].Col == attr {
			posNode = &pos.Graph.Nodes[i]
			break
		}
	}
	if posNode == nil {
		return nil, nil // attribute not typed: no rule
	}

	// S2: discover the negative semantics. The negative examples have
	// correct values everywhere except attr, so re-discovering the full
	// graph over them recovers the same evidence structure plus the
	// connections of the *wrong* values.
	negD, err := DiscoverGraph(g, schema, neg, cfg)
	if err != nil {
		return nil, err
	}
	var negNode *rules.Node
	for i := range negD.Graph.Nodes {
		if negD.Graph.Nodes[i].Col == attr {
			negNode = &negD.Graph.Nodes[i]
			break
		}
	}
	if negNode == nil {
		return nil, nil // wrong values not in the KB: no negative semantics
	}

	// Evidence nodes: columns typed in both graphs, excluding attr.
	// (S3's isomorphism requirement holds by construction: both graphs
	// restricted to these columns discover identical types/edges since
	// the underlying values are identical.)
	negTyped := make(map[string]bool)
	for _, n := range negD.Graph.Nodes {
		negTyped[n.Col] = true
	}
	var evidence []rules.Node
	for _, n := range pos.Graph.Nodes {
		if n.Col != attr && negTyped[n.Col] {
			evidence = append(evidence, n)
		}
	}

	evSet := make(map[string]bool, len(evidence))
	for _, n := range evidence {
		evSet[n.Name] = true
	}
	// Edges among evidence and into the positive node (from the
	// positive graph), plus edges into the negative node (from the
	// negative graph).
	var edges []rules.Edge
	for _, e := range pos.Graph.Edges {
		switch {
		case evSet[e.From] && evSet[e.To]:
			edges = append(edges, e)
		case e.From == posNode.Name && evSet[e.To], e.To == posNode.Name && evSet[e.From]:
			edges = append(edges, renameEndpoint(e, posNode.Name, "p"))
		}
	}
	negEdges := 0
	for _, e := range negD.Graph.Edges {
		if e.From == negNode.Name && evSet[e.To] || e.To == negNode.Name && evSet[e.From] {
			ren := renameEndpoint(e, negNode.Name, "n")
			// Skip negative edges that duplicate the positive semantics
			// exactly (same relationship, same neighbour, same node
			// type): such an edge cannot distinguish wrong values. When
			// the types differ the edge stays — the paper's ϕ4 uses
			// wonPrize on both sides, separated by Chemistry awards vs
			// American awards.
			dup := false
			if negNode.Type == posNode.Type {
				for _, pe := range pos.Graph.Edges {
					if pe.Rel == e.Rel &&
						(pe.From == posNode.Name && renOther(ren, "n") == pe.To ||
							pe.To == posNode.Name && renOther(ren, "n") == pe.From) {
						dup = true
						break
					}
				}
			}
			if !dup {
				edges = append(edges, ren)
				negEdges++
			}
		}
	}
	if negEdges == 0 {
		return nil, nil // indistinguishable from the positive semantics
	}

	p := *posNode
	p.Name = "p"
	n := *negNode
	n.Name = "n"

	dr := &rules.DR{
		Name:     "gen_" + attr,
		Evidence: evidence,
		Pos:      p,
		Neg:      &n,
		Edges:    edges,
	}
	pruneEvidence(dr, cfg.MaxEvidence)
	if err := dr.Validate(schema); err != nil {
		// Disconnected or otherwise unusable: be conservative.
		return nil, nil
	}
	return dr, nil
}

func renameEndpoint(e rules.Edge, from, to string) rules.Edge {
	if e.From == from {
		e.From = to
	}
	if e.To == from {
		e.To = to
	}
	return e
}

// renOther returns the endpoint of e that is not name.
func renOther(e rules.Edge, name string) string {
	if e.From == name {
		return e.To
	}
	return e.From
}

// pruneEvidence keeps at most max evidence nodes: one neighbour of
// the negative node and one of the positive node are always retained
// (the rule is useless without them), and the remaining slots are
// filled by BFS distance from p/n. Edges to removed nodes are
// dropped. If max is too small to keep the rule connected, the rule
// is left unpruned.
func pruneEvidence(dr *rules.DR, max int) {
	if max <= 0 || len(dr.Evidence) <= max {
		return
	}
	adj := make(map[string][]string)
	for _, e := range dr.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	evByName := make(map[string]rules.Node, len(dr.Evidence))
	for _, n := range dr.Evidence {
		evByName[n.Name] = n
	}
	// firstNeighbour returns the evidence neighbour of v with the
	// lexically smallest column.
	firstNeighbour := func(v string) (string, bool) {
		best := ""
		for _, w := range adj[v] {
			nd, ok := evByName[w]
			if !ok {
				continue
			}
			if best == "" || nd.Col < evByName[best].Col {
				best = w
			}
		}
		return best, best != ""
	}
	must := make(map[string]bool)
	if w, ok := firstNeighbour("n"); ok {
		must[w] = true
	}
	if w, ok := firstNeighbour("p"); ok {
		must[w] = true
	}
	if len(must) > max {
		return // cannot prune without disconnecting the rule
	}

	dist := map[string]int{"p": 0, "n": 0}
	queue := []string{"p", "n"}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	sort.SliceStable(dr.Evidence, func(i, j int) bool {
		ni, nj := dr.Evidence[i], dr.Evidence[j]
		if must[ni.Name] != must[nj.Name] {
			return must[ni.Name]
		}
		di, oki := dist[ni.Name]
		dj, okj := dist[nj.Name]
		if oki != okj {
			return oki
		}
		if di != dj {
			return di < dj
		}
		return ni.Col < nj.Col
	})
	kept := make(map[string]bool)
	evidence := dr.Evidence[:max]
	for _, n := range evidence {
		kept[n.Name] = true
	}
	kept["p"] = true
	kept["n"] = true
	var edges []rules.Edge
	for _, e := range dr.Edges {
		if kept[e.From] && kept[e.To] {
			edges = append(edges, e)
		}
	}
	// Pruning must preserve a usable rule; otherwise keep the original.
	pruned := &rules.DR{Name: dr.Name, Evidence: evidence, Pos: dr.Pos, Neg: dr.Neg, Edges: edges}
	if pruned.Validate(nil) != nil {
		return
	}
	dr.Evidence = evidence
	dr.Edges = edges
}
