package rulegen_test

import (
	"testing"

	"detective/internal/dataset"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/rulegen"
	"detective/internal/rules"
	"detective/internal/similarity"
)

func cfg() rulegen.Config {
	return rulegen.Config{
		Sims: map[string]similarity.Spec{"Institution": similarity.EDK(2)},
	}
}

// negativesFor clones the truth table and corrupts exactly attr using
// the semantically-related value the paper's noise model would inject.
func negativesFor(ex *dataset.PaperExample, attr string, swap map[string]string) *relation.Table {
	tb := relation.NewTable(ex.Schema)
	for _, tu := range ex.Truth.Tuples {
		wrong, ok := swap[tu.Values[0]]
		if !ok {
			continue
		}
		cl := tu.Clone()
		cl.Values[ex.Schema.MustCol(attr)] = wrong
		tb.Tuples = append(tb.Tuples, cl)
	}
	return tb
}

func TestDiscoverGraphTypesAndRelations(t *testing.T) {
	ex := dataset.NewPaperExample()
	d, err := rulegen.DiscoverGraph(ex.KB, ex.Schema, ex.Truth, cfg())
	if err != nil {
		t.Fatal(err)
	}
	types := make(map[string]string)
	for _, n := range d.Graph.Nodes {
		types[n.Col] = n.Type
	}
	want := map[string]string{
		"Name":        "Nobel laureates in Chemistry",
		"DOB":         "literal",
		"Country":     "country",
		"Prize":       "Chemistry awards",
		"Institution": "organization",
		"City":        "city",
	}
	for col, ty := range want {
		if types[col] != ty {
			t.Errorf("type(%s) = %q, want %q", col, types[col], ty)
		}
	}
	rels := make(map[string]bool)
	for _, e := range d.Graph.Edges {
		rels[e.From+"/"+e.Rel+"/"+e.To] = true
	}
	for _, w := range []string{
		"cName/bornOnDate/cDOB",
		"cName/worksAt/cInstitution",
		"cName/isCitizenOf/cCountry",
		"cName/wonPrize/cPrize",
		"cInstitution/locatedIn/cCity",
		"cCity/locatedIn/cCountry",
	} {
		if !rels[w] {
			t.Errorf("missing discovered relationship %s (have %v)", w, rels)
		}
	}
	if rels["cName/wasBornIn/cCity"] {
		t.Error("wasBornIn must not be discovered from correct tuples")
	}
	if d.TypeSupport["Name"] != 1.0 {
		t.Errorf("TypeSupport[Name] = %v", d.TypeSupport["Name"])
	}
}

func TestGeneratePaperLikeRules(t *testing.T) {
	ex := dataset.NewPaperExample()
	negatives := map[string]*relation.Table{
		"City": negativesFor(ex, "City", map[string]string{
			"Avram Hershko": "Karcag", "Marie Curie": "Warsaw",
			"Roald Hoffmann": "Zolochiv", "Melvin Calvin": "St. Paul",
		}),
		"Prize": negativesFor(ex, "Prize", map[string]string{
			"Avram Hershko":  "Albert Lasker Award for Medicine",
			"Roald Hoffmann": "National Medal of Science",
		}),
		"Country": negativesFor(ex, "Country", map[string]string{
			"Avram Hershko": "Hungary", "Marie Curie": "Poland", "Roald Hoffmann": "Ukraine",
		}),
		"Institution": negativesFor(ex, "Institution", map[string]string{
			"Avram Hershko": "Hebrew University of Jerusalem", "Marie Curie": "University of Paris",
			"Roald Hoffmann": "Harvard University", "Melvin Calvin": "University of Minnesota",
		}),
	}
	drs, err := rulegen.Generate(ex.KB, ex.Schema, ex.Truth, negatives, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(drs) != 4 {
		names := make([]string, len(drs))
		for i, r := range drs {
			names[i] = r.Name
		}
		t.Fatalf("generated %d rules (%v), want 4", len(drs), names)
	}
	byCol := make(map[string]*rules.DR)
	for _, r := range drs {
		if err := r.Validate(ex.Schema); err != nil {
			t.Errorf("%s invalid: %v", r.Name, err)
		}
		byCol[r.PosCol()] = r
	}

	city := byCol["City"]
	if city == nil {
		t.Fatal("no City rule")
	}
	if city.Pos.Type != "city" || city.Neg.Type != "city" {
		t.Errorf("City rule types: pos=%s neg=%s", city.Pos.Type, city.Neg.Type)
	}
	foundBorn := false
	for _, e := range city.Edges {
		if e.To == "n" && e.Rel == "wasBornIn" {
			foundBorn = true
		}
	}
	if !foundBorn {
		t.Error("City rule missing the wasBornIn negative edge")
	}

	prize := byCol["Prize"]
	if prize == nil {
		t.Fatal("no Prize rule")
	}
	if prize.Pos.Type != "Chemistry awards" || prize.Neg.Type != "American awards" {
		t.Errorf("Prize rule types: pos=%s neg=%s (want the paper's ϕ4 split)", prize.Pos.Type, prize.Neg.Type)
	}

	country := byCol["Country"]
	if country == nil {
		t.Fatal("no Country rule")
	}
	foundBornAt := false
	for _, e := range country.Edges {
		if e.To == "n" && e.Rel == "bornAt" {
			foundBornAt = true
		}
	}
	if !foundBornAt {
		t.Error("Country rule missing the bornAt negative edge")
	}
}

func TestGeneratedRulesRepairSingleErrors(t *testing.T) {
	ex := dataset.NewPaperExample()
	negatives := map[string]*relation.Table{
		"City": negativesFor(ex, "City", map[string]string{
			"Avram Hershko": "Karcag", "Marie Curie": "Warsaw",
			"Roald Hoffmann": "Zolochiv", "Melvin Calvin": "St. Paul",
		}),
	}
	drs, err := rulegen.Generate(ex.KB, ex.Schema, ex.Truth, negatives, cfg())
	if err != nil || len(drs) != 1 {
		t.Fatalf("Generate: %v (%d rules)", err, len(drs))
	}
	e, err := repair.NewEngine(drs, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	// Hershko with only the City error: the generated rule repairs it.
	tu := ex.Truth.Tuples[0].Clone()
	tu.Values[ex.Schema.MustCol("City")] = "Karcag"
	got := e.FastRepair(tu)
	if got.Values[ex.Schema.MustCol("City")] != "Haifa" {
		t.Fatalf("generated rule did not repair City: %v", got)
	}
}

func TestGenerateConservativeCases(t *testing.T) {
	ex := dataset.NewPaperExample()

	// Negative values unknown to the KB: no negative semantics, no rule.
	unknown := negativesFor(ex, "City", map[string]string{
		"Avram Hershko": "Xyzzyville", "Marie Curie": "Nowhere",
		"Roald Hoffmann": "Atlantis", "Melvin Calvin": "Erewhon",
	})
	drs, err := rulegen.Generate(ex.KB, ex.Schema, ex.Truth,
		map[string]*relation.Table{"City": unknown}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(drs) != 0 {
		t.Errorf("unknown wrong values: generated %d rules, want 0", len(drs))
	}

	// No positive examples is an error.
	if _, err := rulegen.Generate(ex.KB, ex.Schema, relation.NewTable(ex.Schema), nil, cfg()); err == nil {
		t.Error("empty positives: want error")
	}

	// Negative examples for an unknown attribute is an error.
	if _, err := rulegen.Generate(ex.KB, ex.Schema, ex.Truth,
		map[string]*relation.Table{"Nope": unknown}, cfg()); err == nil {
		t.Error("unknown attribute: want error")
	}

	// Empty negative table contributes nothing.
	drs, err = rulegen.Generate(ex.KB, ex.Schema, ex.Truth,
		map[string]*relation.Table{"City": relation.NewTable(ex.Schema)}, cfg())
	if err != nil || len(drs) != 0 {
		t.Errorf("empty negatives: %v, %d rules", err, len(drs))
	}
}

func TestMaxEvidencePruning(t *testing.T) {
	ex := dataset.NewPaperExample()
	c := cfg()
	c.MaxEvidence = 2
	negatives := map[string]*relation.Table{
		"City": negativesFor(ex, "City", map[string]string{
			"Avram Hershko": "Karcag", "Marie Curie": "Warsaw",
			"Roald Hoffmann": "Zolochiv", "Melvin Calvin": "St. Paul",
		}),
	}
	drs, err := rulegen.Generate(ex.KB, ex.Schema, ex.Truth, negatives, c)
	if err != nil || len(drs) != 1 {
		t.Fatalf("Generate: %v (%d rules)", err, len(drs))
	}
	dr := drs[0]
	if len(dr.Evidence) != 2 {
		t.Fatalf("evidence = %v, want 2 nodes", dr.Evidence)
	}
	if err := dr.Validate(ex.Schema); err != nil {
		t.Fatalf("pruned rule invalid: %v", err)
	}
}

func TestRankOrdersRulesByTrustworthiness(t *testing.T) {
	ex := dataset.NewPaperExample()

	// A good rule (the paper's City rule) and a deliberately harmful
	// one that "repairs" City to the birth city (swapped semantics).
	good := dataset.PaperRules()[1] // phi2
	badNeg := rules.Node{Name: "n", Col: "City", Type: "city", Sim: similarity.Eq}
	bad := &rules.DR{
		Name: "swapped_city",
		Evidence: []rules.Node{
			{Name: "e1", Col: "Name", Type: "Nobel laureates in Chemistry", Sim: similarity.Eq},
			{Name: "e2", Col: "Institution", Type: "organization", Sim: similarity.EDK(2)},
		},
		Pos: rules.Node{Name: "p", Col: "City", Type: "city", Sim: similarity.Eq},
		Neg: &badNeg,
		Edges: []rules.Edge{
			{From: "e1", Rel: "worksAt", To: "e2"},
			{From: "e1", Rel: "wasBornIn", To: "p"}, // positive = born in (wrong!)
			{From: "e2", Rel: "locatedIn", To: "n"}, // negative = institution city
		},
	}

	scores, err := rulegen.Rank([]*rules.DR{bad, good}, ex.KB, ex.Schema, ex.Truth, ex.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %v", scores)
	}
	if scores[0].Rule.Name != good.Name {
		t.Fatalf("ranking = [%s, %s], want the good rule first", scores[0].Rule.Name, scores[1].Rule.Name)
	}
	if p := scores[0].Precision(); p != 1 {
		t.Errorf("good rule precision = %v, want 1", p)
	}
	if p := scores[1].Precision(); p >= 1 {
		t.Errorf("swapped rule precision = %v, want < 1", p)
	}
	if scores[1].WrongMarks == 0 {
		t.Error("swapped rule should mark erroneous cells as correct")
	}
	for _, s := range scores {
		if s.String() == "" {
			t.Error("empty score rendering")
		}
	}
}

func TestRankRejectsMismatchedTables(t *testing.T) {
	ex := dataset.NewPaperExample()
	short := &relation.Table{Schema: ex.Schema, Tuples: ex.Dirty.Tuples[:2]}
	if _, err := rulegen.Rank(ex.Rules, ex.KB, ex.Schema, ex.Truth, short); err == nil {
		t.Fatal("want error for mismatched table sizes")
	}
}

func TestGenerateCandidatesTypeVariants(t *testing.T) {
	ex := dataset.NewPaperExample()
	negatives := map[string]*relation.Table{
		"Prize": negativesFor(ex, "Prize", map[string]string{
			"Avram Hershko":  "Albert Lasker Award for Medicine",
			"Roald Hoffmann": "National Medal of Science",
		}),
	}
	c := cfg()
	c.TypeCandidates = 3
	cands, err := rulegen.GenerateCandidates(ex.KB, ex.Schema, ex.Truth, negatives, c)
	if err != nil {
		t.Fatal(err)
	}
	prize := cands["Prize"]
	if len(prize) == 0 {
		t.Fatal("no Prize candidates")
	}
	// The top candidate matches Generate's single output.
	single, err := rulegen.Generate(ex.KB, ex.Schema, ex.Truth, negatives, c)
	if err != nil || len(single) != 1 {
		t.Fatalf("Generate: %v (%d)", err, len(single))
	}
	if prize[0].Pos.Type != single[0].Pos.Type {
		t.Errorf("top candidate type %q != Generate's %q", prize[0].Pos.Type, single[0].Pos.Type)
	}
	// With the Yago taxonomy, "award" is a viable (less specific)
	// alternative type for the Prize column, so more than one candidate
	// should surface, each valid and uniquely named.
	if len(prize) < 2 {
		t.Fatalf("candidates = %d, want >= 2 (taxonomy alternatives)", len(prize))
	}
	names := make(map[string]bool)
	for _, dr := range prize {
		if err := dr.Validate(ex.Schema); err != nil {
			t.Errorf("%s invalid: %v", dr.Name, err)
		}
		if names[dr.Name] {
			t.Errorf("duplicate candidate name %s", dr.Name)
		}
		names[dr.Name] = true
	}
}

func TestGenerateCandidatesDefaultsMatchGenerate(t *testing.T) {
	ex := dataset.NewPaperExample()
	negatives := map[string]*relation.Table{
		"City": negativesFor(ex, "City", map[string]string{
			"Avram Hershko": "Karcag", "Marie Curie": "Warsaw",
			"Roald Hoffmann": "Zolochiv", "Melvin Calvin": "St. Paul",
		}),
	}
	cands, err := rulegen.GenerateCandidates(ex.KB, ex.Schema, ex.Truth, negatives, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands["City"]) != 1 {
		t.Fatalf("default TypeCandidates should yield 1 candidate, got %d", len(cands["City"]))
	}
}
