// Package katara simulates the KATARA data-cleaning system (Chu et
// al., SIGMOD 2015 — reference [7] of the paper) under the expert-free
// protocol the paper uses for its Exp-1 comparison:
//
//   - a *table pattern* (a schema-level matching graph covering the
//     whole table) explains the table against the KB;
//   - a tuple that fully matches the pattern is annotated correct;
//   - on a partial match, the minimally unmatched attributes are
//     marked wrong, and the candidate repair minimizing repair cost
//     (fewest changed cells, then smallest total edit distance) is
//     applied;
//   - matching is exact only — KATARA "does not support fuzzy
//     matching" (§V-B Exp-1), which is what costs it recall on typos.
package katara

import (
	"fmt"
	"sort"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// System binds one table pattern to a KB and schema.
type System struct {
	Schema  *relation.Schema
	Pattern rules.Graph
	g       *kb.Graph

	nodeIdx map[string]int // node name -> index in Pattern.Nodes
	colOf   []int          // node index -> column index
}

// New validates the pattern (it must cover table columns with exact
// matching) and returns a system.
func New(pattern rules.Graph, g *kb.Graph, schema *relation.Schema) (*System, error) {
	if err := pattern.Validate(schema); err != nil {
		return nil, fmt.Errorf("katara: %w", err)
	}
	s := &System{Schema: schema, Pattern: pattern, g: g, nodeIdx: make(map[string]int)}
	for i, n := range pattern.Nodes {
		if n.Sim.Fuzzy() {
			return nil, fmt.Errorf("katara: node %s uses fuzzy matching; KATARA supports exact matching only", n.Name)
		}
		s.nodeIdx[n.Name] = i
		s.colOf = append(s.colOf, schema.MustCol(n.Col))
	}
	return s, nil
}

// Outcome is the verdict of the simulated system on one tuple.
type Outcome struct {
	// Full reports a full pattern match: the tuple is annotated
	// correct (the only annotation the paper credits KATARA with).
	Full bool
	// MatchedCols are the columns covered by the best (maximal)
	// partial match.
	MatchedCols []string
	// Repairs maps wrongly-valued columns to the minimal-cost
	// replacement drawn from the KB; empty when no consistent
	// completion of the partial match exists.
	Repairs map[string]string
}

// Clean evaluates the pattern against t. A full instance-level match
// annotates the tuple correct. Otherwise KATARA "lists all instance
// graphs and finds the most similar one" (§V-B Exp-3): every pattern
// instance graph rooted at an instance of the centre node's type is
// enumerated, and the one minimizing repair cost (fewest differing
// cells, then smallest total edit distance) supplies the repairs —
// provided it agrees with the tuple on at least one attribute ("at
// least one attribute must be correct", §V-B Exp-1). This exhaustive
// enumeration is also what makes KATARA expensive at scale, exactly
// as the paper reports in Figure 8(d).
func (s *System) Clean(t *relation.Tuple) Outcome {
	n := len(s.Pattern.Nodes)
	// Candidate instances per node under exact matching.
	cands := make([][]kb.ID, n)
	for i, nd := range s.Pattern.Nodes {
		cands[i] = s.exactCandidates(nd, t.Values[s.colOf[i]])
	}

	// Largest subset of pattern nodes admitting an instance-level
	// match: full matches are annotated; the unmatched remainder of
	// the best partial match is what KATARA deems wrong.
	best, assign := s.bestPartial(t, cands)
	if len(best) == n {
		return Outcome{Full: true, MatchedCols: s.colsOf(best)}
	}
	if len(best) == 0 {
		return Outcome{}
	}
	repairs := s.nearestGraphRepairs(t, assign)
	return Outcome{MatchedCols: s.colsOf(best), Repairs: repairs}
}

// nearestGraphRepairs enumerates every complete pattern instance
// graph rooted at the centre node, keeps only the graphs that agree
// with the best partial match (KATARA repairs the *minimally
// unmatched* attributes and never second-guesses matched ones), and
// returns the cell rewrites of the minimal-cost survivor. The
// root-by-root enumeration over the whole class extent is the
// authentic cost of "listing all instance graphs" (§V-B Exp-3).
func (s *System) nearestGraphRepairs(t *relation.Tuple, matched map[int]kb.ID) map[string]string {
	n := len(s.Pattern.Nodes)
	center := s.centerNode()
	order, ok := s.orderByAttachment([]int{center}, others(n, center))
	if !ok {
		return nil // disconnected pattern: nothing derivable
	}
	cls := s.g.Lookup(s.Pattern.Nodes[center].Type)
	if cls == kb.Invalid {
		return nil
	}

	bestCost, bestED := -1, 0
	var best map[int]kb.ID
	cur := make(map[int]kb.ID, n)

	var rec func(idx int)
	rec = func(idx int) {
		if idx == len(order) {
			cost, ed := 0, 0
			for i := 0; i < n; i++ {
				name := s.g.Name(cur[i])
				if name != t.Values[s.colOf[i]] {
					cost++
					ed += similarity.ED(name, t.Values[s.colOf[i]])
				}
			}
			if bestCost < 0 || cost < bestCost || (cost == bestCost && ed < bestED) {
				bestCost, bestED = cost, ed
				best = make(map[int]kb.ID, n)
				for k, v := range cur {
					best[k] = v
				}
			}
			return
		}
		i := order[idx]
		for _, cand := range s.completionCandidates(i, cur) {
			if want, isMatched := matched[i]; isMatched && cand != want {
				continue // must coincide with the partial match
			}
			cur[i] = cand
			rec(idx + 1)
			delete(cur, i)
		}
	}
	for _, root := range s.g.InstancesOf(cls) {
		if want, isMatched := matched[center]; isMatched && root != want {
			continue
		}
		cur[center] = root
		rec(0)
		delete(cur, center)
	}
	if best == nil {
		return nil
	}
	out := make(map[string]string)
	for i, inst := range best {
		name := s.g.Name(inst)
		if name != t.Values[s.colOf[i]] {
			out[s.Pattern.Nodes[i].Col] = name
		}
	}
	return out
}

// centerNode picks the pattern node with the highest degree — the
// anchor the instance-graph enumeration roots at.
func (s *System) centerNode() int {
	deg := make([]int, len(s.Pattern.Nodes))
	for _, e := range s.Pattern.Edges {
		deg[s.nodeIdx[e.From]]++
		deg[s.nodeIdx[e.To]]++
	}
	best := 0
	for i, d := range deg {
		if d > deg[best] {
			best = i
		}
	}
	return best
}

func others(n, except int) []int {
	out := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != except {
			out = append(out, i)
		}
	}
	return out
}

func (s *System) exactCandidates(nd rules.Node, value string) []kb.ID {
	id := s.g.Lookup(value)
	if id == kb.Invalid {
		return nil
	}
	cls := s.g.Lookup(nd.Type)
	if cls == kb.Invalid || !s.g.HasType(id, cls) {
		return nil
	}
	return []kb.ID{id}
}

// bestPartial returns the largest node subset (by size, ties broken
// by subset enumeration order) that admits an assignment satisfying
// every pattern edge with both endpoints inside the subset.
func (s *System) bestPartial(t *relation.Tuple, cands [][]kb.ID) ([]int, map[int]kb.ID) {
	n := len(s.Pattern.Nodes)
	var bestSubset []int
	var bestAssign map[int]kb.ID
	for mask := (1 << n) - 1; mask > 0; mask-- {
		size := popcount(mask)
		if size <= len(bestSubset) {
			continue
		}
		subset := make([]int, 0, size)
		ok := true
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				if len(cands[i]) == 0 {
					ok = false
					break
				}
				subset = append(subset, i)
			}
		}
		if !ok {
			continue
		}
		if a := s.matchSubset(subset, cands); a != nil {
			bestSubset, bestAssign = subset, a
		}
	}
	return bestSubset, bestAssign
}

// matchSubset tries to bind every node in subset so that the pattern
// edges inside the subset hold. Exact matching means candidate sets
// are single instances, so this is a direct edge check.
func (s *System) matchSubset(subset []int, cands [][]kb.ID) map[int]kb.ID {
	in := make(map[int]bool, len(subset))
	assign := make(map[int]kb.ID, len(subset))
	for _, i := range subset {
		in[i] = true
		assign[i] = cands[i][0]
	}
	for _, e := range s.Pattern.Edges {
		fi, ti := s.nodeIdx[e.From], s.nodeIdx[e.To]
		if !in[fi] || !in[ti] {
			continue
		}
		rel := s.g.Lookup(e.Rel)
		if rel == kb.Invalid || !s.g.HasEdge(assign[fi], rel, assign[ti]) {
			return nil
		}
	}
	return assign
}

// completionCandidates proposes instances for node i consistent with
// every pattern edge between i and an already-assigned node, filtered
// by i's type.
func (s *System) completionCandidates(i int, cur map[int]kb.ID) []kb.ID {
	cls := s.g.Lookup(s.Pattern.Nodes[i].Type)
	if cls == kb.Invalid {
		return nil
	}
	var result map[kb.ID]bool
	for _, e := range s.Pattern.Edges {
		fi, ti := s.nodeIdx[e.From], s.nodeIdx[e.To]
		var neigh []kb.ID
		switch {
		case fi == i:
			o, ok := cur[ti]
			if !ok {
				continue
			}
			rel := s.g.Lookup(e.Rel)
			if rel == kb.Invalid {
				return nil
			}
			neigh = s.g.Subjects(rel, o)
		case ti == i:
			o, ok := cur[fi]
			if !ok {
				continue
			}
			rel := s.g.Lookup(e.Rel)
			if rel == kb.Invalid {
				return nil
			}
			neigh = s.g.Objects(o, rel)
		default:
			continue
		}
		set := make(map[kb.ID]bool, len(neigh))
		for _, x := range neigh {
			if !s.g.HasType(x, cls) {
				continue
			}
			if result == nil || result[x] {
				set[x] = true
			}
		}
		result = set
		if len(result) == 0 {
			return nil
		}
	}
	if result == nil {
		return nil
	}
	out := make([]kb.ID, 0, len(result))
	for x := range result {
		out = append(out, x)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// orderByAttachment orders unmatched nodes so that each node, when
// visited, has at least one pattern edge to a previously assigned
// node. ok is false if some node can never attach.
func (s *System) orderByAttachment(matched, unmatched []int) ([]int, bool) {
	assigned := make(map[int]bool, len(matched))
	for _, i := range matched {
		assigned[i] = true
	}
	remaining := append([]int(nil), unmatched...)
	var out []int
	for len(remaining) > 0 {
		progress := false
		for k, i := range remaining {
			if s.hasAssignedNeighbour(i, assigned) {
				out = append(out, i)
				assigned[i] = true
				remaining = append(remaining[:k], remaining[k+1:]...)
				progress = true
				break
			}
		}
		if !progress {
			return nil, false
		}
	}
	return out, true
}

func (s *System) hasAssignedNeighbour(i int, assigned map[int]bool) bool {
	for _, e := range s.Pattern.Edges {
		fi, ti := s.nodeIdx[e.From], s.nodeIdx[e.To]
		if fi == i && assigned[ti] || ti == i && assigned[fi] {
			return true
		}
	}
	return false
}

func (s *System) colsOf(nodes []int) []string {
	out := make([]string, len(nodes))
	for k, i := range nodes {
		out[k] = s.Pattern.Nodes[i].Col
	}
	return out
}

// CleanTable runs Clean over every tuple, applying repairs and
// marking fully matched tuples. It returns the cleaned table and the
// number of positively annotated cells (#-POS: full matches only, the
// paper's favourable accounting for KATARA).
func (s *System) CleanTable(tb *relation.Table) (*relation.Table, int) {
	out := tb.Clone()
	pos := 0
	for _, tu := range out.Tuples {
		o := s.Clean(tu)
		if o.Full {
			for i := range tu.Marked {
				tu.Marked[i] = true
			}
			pos += len(tu.Marked)
			continue
		}
		for col, v := range o.Repairs {
			tu.Values[s.Schema.MustCol(col)] = v
		}
	}
	return out, pos
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
