package katara

import (
	"fmt"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rulegen"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// DiscoverPattern derives a table pattern from a sample of (mostly
// correct) tuples, the way KATARA bootstraps its patterns from table
// semantics: the columns are typed against the KB and connected by
// the best-supported relationships, with matching forced to exact
// (KATARA does not support fuzzy matching). It fails when the sample
// does not support a connected pattern over every column — KATARA
// needs a *global* table interpretation, unlike detective rules'
// local ones (§I, "table patterns ... a holistic way").
func DiscoverPattern(g *kb.Graph, schema *relation.Schema, sample *relation.Table,
	minSupport float64) (rules.Graph, error) {

	cfg := rulegen.Config{MinTypeSupport: minSupport, MinRelSupport: minSupport}
	d, err := rulegen.DiscoverGraph(g, schema, sample, cfg)
	if err != nil {
		return rules.Graph{}, err
	}
	pattern := d.Graph
	for i := range pattern.Nodes {
		pattern.Nodes[i].Sim = similarity.Eq
	}
	if len(pattern.Nodes) != schema.Arity() {
		return rules.Graph{}, fmt.Errorf(
			"katara: pattern covers %d of %d columns (KATARA needs a holistic interpretation)",
			len(pattern.Nodes), schema.Arity())
	}
	if err := pattern.Validate(schema); err != nil {
		return rules.Graph{}, fmt.Errorf("katara: discovered pattern: %w", err)
	}
	return pattern, nil
}
