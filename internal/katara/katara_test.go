package katara_test

import (
	"testing"

	"detective/internal/dataset"
	"detective/internal/katara"
	"detective/internal/kb"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// paperPattern is the Figure 2 table pattern with exact matching
// everywhere (KATARA does not support fuzzy matching).
func paperPattern() rules.Graph {
	node := func(name, col, typ string) rules.Node {
		return rules.Node{Name: name, Col: col, Type: typ, Sim: similarity.Eq}
	}
	return rules.Graph{
		Nodes: []rules.Node{
			node("v1", "Name", "Nobel laureates in Chemistry"),
			node("v2", "DOB", kb.LiteralClass),
			node("v3", "Country", "country"),
			node("v4", "Prize", "Chemistry awards"),
			node("v5", "Institution", "organization"),
			node("v6", "City", "city"),
		},
		Edges: []rules.Edge{
			{From: "v1", Rel: "bornOnDate", To: "v2"},
			{From: "v1", Rel: "isCitizenOf", To: "v3"},
			{From: "v1", Rel: "wonPrize", To: "v4"},
			{From: "v1", Rel: "worksAt", To: "v5"},
			{From: "v5", Rel: "locatedIn", To: "v6"},
			{From: "v6", Rel: "locatedIn", To: "v3"},
		},
	}
}

func newSystem(t *testing.T) (*dataset.PaperExample, *katara.System) {
	t.Helper()
	ex := dataset.NewPaperExample()
	s, err := katara.New(paperPattern(), ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	return ex, s
}

func TestRejectsFuzzyPattern(t *testing.T) {
	ex := dataset.NewPaperExample()
	p := paperPattern()
	p.Nodes[4].Sim = similarity.EDK(2)
	if _, err := katara.New(p, ex.KB, ex.Schema); err == nil {
		t.Fatal("fuzzy pattern must be rejected")
	}
}

func TestFullMatchAnnotates(t *testing.T) {
	ex, s := newSystem(t)
	for i, tu := range ex.Truth.Tuples {
		o := s.Clean(tu)
		if !o.Full {
			t.Errorf("truth tuple %d: not a full match (matched %v)", i, o.MatchedCols)
		}
	}
}

func TestPartialMatchRepairsSemanticErrors(t *testing.T) {
	// r1: Prize and City are semantic errors with unique consistent
	// completions; KATARA finds both.
	ex, s := newSystem(t)
	o := s.Clean(ex.Dirty.Tuples[0])
	if o.Full {
		t.Fatal("dirty r1 must not fully match")
	}
	if o.Repairs["Prize"] != "Nobel Prize in Chemistry" {
		t.Errorf("Prize repair = %q", o.Repairs["Prize"])
	}
	if o.Repairs["City"] != "Haifa" {
		t.Errorf("City repair = %q", o.Repairs["City"])
	}
}

func TestNoFuzzyMatchingOnTypos(t *testing.T) {
	// r2's "Paster Institute" is not an exact KB instance, so the
	// Institution node cannot match; KATARA can still complete it from
	// the rest of the tuple, but the tuple is not a full match.
	ex, s := newSystem(t)
	o := s.Clean(ex.Dirty.Tuples[1])
	if o.Full {
		t.Fatal("typo tuple must not fully match")
	}
	for _, c := range o.MatchedCols {
		if c == "Institution" {
			t.Fatal("typo'd Institution must be unmatched under exact matching")
		}
	}
}

func TestKeyAttributeTypoRepairedWhenUniquelyDerivable(t *testing.T) {
	// A typo in Name leaves a 5-node partial match; since the other
	// attributes identify the person uniquely, the min-cost completion
	// restores the canonical name.
	ex, s := newSystem(t)
	tu := ex.Truth.Tuples[0].Clone()
	tu.Values[0] = "Avram Hershk0"
	o := s.Clean(tu)
	if o.Full {
		t.Fatal("must not fully match")
	}
	if o.Repairs["Name"] != "Avram Hershko" {
		t.Errorf("Name repair = %q, want the uniquely derivable canonical name", o.Repairs["Name"])
	}
}

func TestCleanTableCountsPOS(t *testing.T) {
	ex, s := newSystem(t)
	cleaned, pos := s.CleanTable(ex.Truth)
	if pos != ex.Truth.Len()*ex.Schema.Arity() {
		t.Errorf("#-POS = %d, want %d", pos, ex.Truth.Len()*ex.Schema.Arity())
	}
	for i := range cleaned.Tuples {
		if !cleaned.Tuples[i].Equal(ex.Truth.Tuples[i]) {
			t.Errorf("truth tuple %d changed", i)
		}
	}
	// Dirty table: no tuple fully matches, so #-POS is 0, but repairs
	// are applied in place.
	cleanedDirty, posDirty := s.CleanTable(ex.Dirty)
	if posDirty != 0 {
		t.Errorf("dirty #-POS = %d, want 0", posDirty)
	}
	if got := cleanedDirty.Cell(0, "City"); got != "Haifa" {
		t.Errorf("r1 City = %q after KATARA", got)
	}
	// The input table is untouched.
	if got := ex.Dirty.Cell(0, "City"); got != "Karcag" {
		t.Errorf("input table mutated: City = %q", got)
	}
}

func TestConsistentlyWrongValuesConfuseTheMarking(t *testing.T) {
	// Melvin Calvin's dirty tuple (Table I): City = St. Paul is wrong
	// but *consistent* (he is a US citizen and St. Paul is a US city),
	// so KATARA's maximal partial match keeps it and marks only
	// Institution as unmatched — "cannot tell which value is wrong",
	// the failure mode the paper contrasts detective rules against.
	// No instance graph both employs Calvin and sits in St. Paul, so
	// the error escapes repair entirely.
	ex, s := newSystem(t)
	o := s.Clean(ex.Dirty.Tuples[3])
	if o.Full {
		t.Fatal("must not fully match")
	}
	matched := make(map[string]bool)
	for _, c := range o.MatchedCols {
		matched[c] = true
	}
	if matched["Institution"] {
		t.Error("Institution should be the unmatched attribute")
	}
	if !matched["City"] {
		t.Error("the consistently-wrong City should (incorrectly) stay matched")
	}
	if len(o.Repairs) != 0 {
		t.Errorf("Repairs = %v, want none", o.Repairs)
	}
}

func TestIncompletenessBecomesFalseNegative(t *testing.T) {
	// Remove the KB's worksAt edge for Hershko: his correct tuple now
	// only partially matches — the paper's point that KATARA cannot
	// distinguish errors from KB incompleteness.
	ex := dataset.NewPaperExample()
	g := kb.New()
	g.AddType("Avram Hershko", "Nobel laureates in Chemistry")
	g.AddType("Israel", "country")
	g.AddType("Nobel Prize in Chemistry", "Chemistry awards")
	g.AddType("Israel Institute of Technology", "organization")
	g.AddType("Haifa", "city")
	g.AddPropertyTriple("Avram Hershko", "bornOnDate", "1937-12-31")
	g.AddTriple("Avram Hershko", "isCitizenOf", "Israel")
	g.AddTriple("Avram Hershko", "wonPrize", "Nobel Prize in Chemistry")
	// worksAt edge missing.
	g.AddTriple("Israel Institute of Technology", "locatedIn", "Haifa")
	g.AddTriple("Haifa", "locatedIn", "Israel")

	s, err := katara.New(paperPattern(), g, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	o := s.Clean(ex.Truth.Tuples[0])
	if o.Full {
		t.Fatal("tuple must not fully match with the coverage gap")
	}
}

func TestDiscoverPattern(t *testing.T) {
	ex := dataset.NewPaperExample()
	pattern, err := katara.DiscoverPattern(ex.KB, ex.Schema, ex.Truth, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pattern.Nodes) != 6 {
		t.Fatalf("pattern covers %d columns", len(pattern.Nodes))
	}
	for _, n := range pattern.Nodes {
		if n.Sim.Fuzzy() {
			t.Fatalf("node %s fuzzy; KATARA patterns must be exact", n.Name)
		}
	}
	// The discovered pattern drives a working system that fully
	// matches the ground truth.
	s, err := katara.New(pattern, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range ex.Truth.Tuples {
		if !s.Clean(tu).Full {
			t.Errorf("truth tuple %d not a full match under discovered pattern", i)
		}
	}
}

func TestDiscoverPatternFailsWithoutCoverage(t *testing.T) {
	// A KB that cannot type every column: no holistic pattern.
	ex := dataset.NewPaperExample()
	g := kb.New()
	g.AddType("Avram Hershko", "Nobel laureates in Chemistry")
	if _, err := katara.DiscoverPattern(g, ex.Schema, ex.Truth, 0.8); err == nil {
		t.Fatal("want error when columns cannot be typed")
	}
}
