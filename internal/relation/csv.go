package relation

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV loads a table from CSV. The first record is the header and
// becomes the schema's attribute list; name becomes the schema name.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	tb := NewTable(NewSchema(name, header...))
	for lineno := 2; ; lineno++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, header has %d", lineno, len(rec), len(header))
		}
		tb.Append(rec...)
	}
	return tb, nil
}

// WriteCSV writes the table as CSV with a header row. Marks are not
// serialized; use WriteMarkedCSV to keep them.
func (tb *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(tb.Schema.Attrs); err != nil {
		return err
	}
	for _, t := range tb.Tuples {
		if err := cw.Write(t.Values); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkedCSV writes the table as CSV with a "+" suffix appended to
// every positively marked cell, matching the notation of the paper's
// worked examples. It is intended for human inspection of cleaning
// output.
func (tb *Table) WriteMarkedCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(tb.Schema.Attrs); err != nil {
		return err
	}
	row := make([]string, tb.Schema.Arity())
	for _, t := range tb.Tuples {
		for i, v := range t.Values {
			if t.Marked[i] {
				row[i] = v + "+"
			} else {
				row[i] = v
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
