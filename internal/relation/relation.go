// Package relation implements the relational substrate: schemas,
// tables, tuples, and the per-cell positive marks ("+") that detective
// rules attach when they prove a value correct (paper §III-B).
package relation

import (
	"fmt"
	"strings"
)

// Schema names a relation and its attributes, in order.
type Schema struct {
	Name  string
	Attrs []string
	index map[string]int
}

// NewSchema creates a schema. Attribute names must be unique and
// non-empty; NewSchema panics otherwise, since schemas are build-time
// constants in every caller.
func NewSchema(name string, attrs ...string) *Schema {
	s := &Schema{Name: name, Attrs: append([]string(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a == "" {
			panic(fmt.Sprintf("relation: schema %q has empty attribute name at %d", name, i))
		}
		if _, dup := s.index[a]; dup {
			panic(fmt.Sprintf("relation: schema %q has duplicate attribute %q", name, a))
		}
		s.index[a] = i
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// Col returns the position of attribute a, or -1 if absent.
func (s *Schema) Col(a string) int {
	if i, ok := s.index[a]; ok {
		return i
	}
	return -1
}

// MustCol is Col but panics on a missing attribute; used where the
// attribute name comes from a validated rule.
func (s *Schema) MustCol(a string) int {
	i := s.Col(a)
	if i < 0 {
		panic(fmt.Sprintf("relation: schema %q has no attribute %q", s.Name, a))
	}
	return i
}

// Has reports whether attribute a exists.
func (s *Schema) Has(a string) bool { return s.Col(a) >= 0 }

// Tuple is one row plus its per-cell positive marks.
type Tuple struct {
	Values []string
	Marked []bool // Marked[i]: cell i proven correct ("+")
}

// NewTuple creates an unmarked tuple from values.
func NewTuple(values ...string) *Tuple {
	return &Tuple{Values: append([]string(nil), values...), Marked: make([]bool, len(values))}
}

// Clone deep-copies the tuple.
func (t *Tuple) Clone() *Tuple {
	return &Tuple{
		Values: append([]string(nil), t.Values...),
		Marked: append([]bool(nil), t.Marked...),
	}
}

// NumMarked counts cells marked positive.
func (t *Tuple) NumMarked() int {
	n := 0
	for _, m := range t.Marked {
		if m {
			n++
		}
	}
	return n
}

// IsMarked reports whether any cell is marked positive ("marked
// tuple" in the paper's terminology).
func (t *Tuple) IsMarked() bool {
	for _, m := range t.Marked {
		if m {
			return true
		}
	}
	return false
}

// Equal reports value equality (marks ignored).
func (t *Tuple) Equal(o *Tuple) bool {
	if len(t.Values) != len(o.Values) {
		return false
	}
	for i := range t.Values {
		if t.Values[i] != o.Values[i] {
			return false
		}
	}
	return true
}

// EqualMarked reports equality of both values and marks, the fixpoint
// comparison used by consistency checking.
func (t *Tuple) EqualMarked(o *Tuple) bool {
	if !t.Equal(o) || len(t.Marked) != len(o.Marked) {
		return false
	}
	for i := range t.Marked {
		if t.Marked[i] != o.Marked[i] {
			return false
		}
	}
	return true
}

// String renders the tuple with "+" suffixes on marked cells, as in
// the paper's running examples.
func (t *Tuple) String() string {
	parts := make([]string, len(t.Values))
	for i, v := range t.Values {
		if t.Marked[i] {
			parts[i] = v + "+"
		} else {
			parts[i] = v
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Table is a schema plus rows.
type Table struct {
	Schema *Schema
	Tuples []*Tuple
}

// NewTable creates an empty table over schema s.
func NewTable(s *Schema) *Table { return &Table{Schema: s} }

// Append adds a tuple built from values; it panics if the arity is
// wrong, which is always a programming error in this codebase.
func (tb *Table) Append(values ...string) *Tuple {
	if len(values) != tb.Schema.Arity() {
		panic(fmt.Sprintf("relation: table %q arity %d, got %d values",
			tb.Schema.Name, tb.Schema.Arity(), len(values)))
	}
	t := NewTuple(values...)
	tb.Tuples = append(tb.Tuples, t)
	return t
}

// Len returns the number of tuples.
func (tb *Table) Len() int { return len(tb.Tuples) }

// Clone deep-copies the table (sharing the schema).
func (tb *Table) Clone() *Table {
	out := &Table{Schema: tb.Schema, Tuples: make([]*Tuple, len(tb.Tuples))}
	for i, t := range tb.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// Cell returns the value of attribute attr in row i.
func (tb *Table) Cell(i int, attr string) string {
	return tb.Tuples[i].Values[tb.Schema.MustCol(attr)]
}

// SetCell sets the value of attribute attr in row i.
func (tb *Table) SetCell(i int, attr, v string) {
	tb.Tuples[i].Values[tb.Schema.MustCol(attr)] = v
}

// NumCells returns rows × columns.
func (tb *Table) NumCells() int { return tb.Len() * tb.Schema.Arity() }

// NumMarked returns the total number of positively marked cells, the
// #-POS measure of the paper's Table III.
func (tb *Table) NumMarked() int {
	n := 0
	for _, t := range tb.Tuples {
		n += t.NumMarked()
	}
	return n
}

// Diff returns the coordinates (row, col) of cells whose values
// differ between tb and o, which must have the same shape. It is the
// primitive behind repair-quality accounting.
func (tb *Table) Diff(o *Table) [][2]int {
	if tb.Len() != o.Len() || tb.Schema.Arity() != o.Schema.Arity() {
		panic("relation: Diff over tables of different shape")
	}
	var out [][2]int
	for i := range tb.Tuples {
		for j := range tb.Tuples[i].Values {
			if tb.Tuples[i].Values[j] != o.Tuples[i].Values[j] {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}
