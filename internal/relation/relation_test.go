package relation

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func nobelSchema() *Schema {
	return NewSchema("Nobel", "Name", "DOB", "Country", "Prize", "Institution", "City")
}

func TestSchemaCols(t *testing.T) {
	s := nobelSchema()
	if s.Arity() != 6 {
		t.Fatalf("Arity = %d", s.Arity())
	}
	if s.Col("Name") != 0 || s.Col("City") != 5 {
		t.Fatal("Col positions wrong")
	}
	if s.Col("Nope") != -1 {
		t.Fatal("Col(missing) != -1")
	}
	if !s.Has("Prize") || s.Has("X") {
		t.Fatal("Has wrong")
	}
}

func TestSchemaPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate attr", func() { NewSchema("R", "A", "A") })
	mustPanic("empty attr", func() { NewSchema("R", "") })
	mustPanic("MustCol missing", func() { nobelSchema().MustCol("X") })
}

func TestTupleMarks(t *testing.T) {
	tu := NewTuple("a", "b", "c")
	if tu.IsMarked() || tu.NumMarked() != 0 {
		t.Fatal("fresh tuple must be unmarked")
	}
	tu.Marked[1] = true
	if !tu.IsMarked() || tu.NumMarked() != 1 {
		t.Fatal("mark accounting wrong")
	}
	if got := tu.String(); got != "(a, b+, c)" {
		t.Fatalf("String = %q", got)
	}
}

func TestTupleCloneIsDeep(t *testing.T) {
	tu := NewTuple("a", "b")
	cl := tu.Clone()
	cl.Values[0] = "x"
	cl.Marked[1] = true
	if tu.Values[0] != "a" || tu.Marked[1] {
		t.Fatal("Clone shares storage")
	}
}

func TestTupleEquality(t *testing.T) {
	a := NewTuple("x", "y")
	b := NewTuple("x", "y")
	if !a.Equal(b) || !a.EqualMarked(b) {
		t.Fatal("identical tuples must be equal")
	}
	b.Marked[0] = true
	if !a.Equal(b) {
		t.Fatal("Equal must ignore marks")
	}
	if a.EqualMarked(b) {
		t.Fatal("EqualMarked must see marks")
	}
	c := NewTuple("x", "z")
	if a.Equal(c) {
		t.Fatal("different values must not be equal")
	}
}

func TestTableAppendAndCells(t *testing.T) {
	tb := NewTable(NewSchema("R", "A", "B"))
	tb.Append("1", "2")
	tb.Append("3", "4")
	if tb.Len() != 2 || tb.NumCells() != 4 {
		t.Fatal("size accounting wrong")
	}
	if tb.Cell(1, "B") != "4" {
		t.Fatal("Cell wrong")
	}
	tb.SetCell(0, "A", "9")
	if tb.Cell(0, "A") != "9" {
		t.Fatal("SetCell wrong")
	}
}

func TestTableAppendArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable(NewSchema("R", "A")).Append("1", "2")
}

func TestTableCloneAndDiff(t *testing.T) {
	tb := NewTable(NewSchema("R", "A", "B"))
	tb.Append("1", "2")
	tb.Append("3", "4")
	cl := tb.Clone()
	cl.SetCell(0, "B", "x")
	cl.Tuples[1].Marked[0] = true
	if tb.Cell(0, "B") != "2" || tb.Tuples[1].Marked[0] {
		t.Fatal("Clone shares storage")
	}
	d := tb.Diff(cl)
	if len(d) != 1 || d[0] != [2]int{0, 1} {
		t.Fatalf("Diff = %v", d)
	}
	if tb.NumMarked() != 0 || cl.NumMarked() != 1 {
		t.Fatal("NumMarked wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable(nobelSchema())
	tb.Append("Avram Hershko", "1937-12-31", "Israel", "Nobel Prize in Chemistry", "Israel Institute of Technology", "Haifa")
	tb.Append("Marie, Curie", "1867-11-07", "France", "Nobel \"Prize\"", "Pasteur Institute", "Paris")

	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV("Nobel", &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != tb.Len() {
		t.Fatalf("rows: %d vs %d", got.Len(), tb.Len())
	}
	for i := range tb.Tuples {
		if !got.Tuples[i].Equal(tb.Tuples[i]) {
			t.Errorf("row %d: %v vs %v", i, got.Tuples[i], tb.Tuples[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("R", strings.NewReader("")); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := ReadCSV("R", strings.NewReader("A,B\n1\n")); err == nil {
		t.Error("short row: want error")
	}
}

func TestWriteMarkedCSV(t *testing.T) {
	tb := NewTable(NewSchema("R", "A", "B"))
	tu := tb.Append("x", "y")
	tu.Marked[1] = true
	var buf bytes.Buffer
	if err := tb.WriteMarkedCSV(&buf); err != nil {
		t.Fatalf("WriteMarkedCSV: %v", err)
	}
	want := "A,B\nx,y+\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(a, b, c string) bool {
		tu := NewTuple(a, b, c)
		return tu.Clone().EqualMarked(tu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
