// Package detective is a data-cleaning library that detects and
// repairs wrong relational data — and marks correct data — using
// well-curated knowledge bases, implementing the detective rules (DRs)
// of Hao, Tang, Li and Li, "Cleaning Relations using Knowledge Bases"
// (ICDE 2017).
//
// A detective rule binds a subset of a table's columns to types and
// relationships in a KB twice over: once with the *positive* semantics
// a correct tuple exhibits, and once with the *negative* semantics a
// specific wrong value exhibits (for example, City holding the city a
// laureate was born in rather than the city they work in). When a
// tuple matches the positive side, the touched cells are proven
// correct; when it matches the negative side and the KB supplies a
// replacement, the error is repaired — deterministically, with no
// heuristics.
//
// Basic usage:
//
//	g, _ := detective.ParseKB(kbFile)
//	rs, _ := detective.ParseRules(rulesFile)
//	tb, _ := detective.ReadCSV("Nobel", csvFile)
//	c, _ := detective.NewCleaner(rs, g, tb.Schema)
//	cleaned := c.CleanTable(tb)
//
// The subpackages under internal/ implement the full system: the KB
// store, the matching machinery, the basic and fast repair algorithms,
// rule generation from examples, consistency checking, the baselines
// the paper compares against (KATARA, Llunatic-style FD repair,
// constant CFDs) and the complete experiment suite.
package detective

import (
	"context"
	"io"

	"detective/internal/consistency"
	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/rulegen"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// Core re-exported types. These aliases are the public names of the
// engine's building blocks; see the originating packages for full
// method documentation.
type (
	// KB is an in-memory RDF-style knowledge graph.
	KB = kb.Graph
	// Schema names a relation and its attributes.
	Schema = relation.Schema
	// Table is a relation instance whose cells carry positive marks.
	Table = relation.Table
	// Tuple is one row plus its per-cell marks.
	Tuple = relation.Tuple
	// Rule is a detective rule.
	Rule = rules.DR
	// Node binds a column to a KB type under a matching operation.
	Node = rules.Node
	// Edge labels a pair of rule nodes with a KB relationship.
	Edge = rules.Edge
	// MatchingGraph is a schema-level matching graph (also the table-
	// pattern shape used by KATARA-style systems).
	MatchingGraph = rules.Graph
	// Sim is a matching operation: equality, edit distance, Jaccard or
	// cosine.
	Sim = similarity.Spec
	// Outcome is the verdict of one rule on one tuple.
	Outcome = rules.Outcome
	// Violation is an order-dependent repair found by CheckConsistency.
	Violation = consistency.Violation
	// RuleGenConfig tunes example-driven rule generation.
	RuleGenConfig = rulegen.Config
)

// Matching-operation constructors.
var (
	// Eq is exact string equality ("=").
	Eq = similarity.Eq
)

// EditDistance returns the "ED,k" matching operation.
func EditDistance(k int) Sim { return similarity.EDK(k) }

// Jaccard returns the "JAC,tau" matching operation.
func Jaccard(tau float64) Sim { return similarity.JaccardAtLeast(tau) }

// Cosine returns the "COS,tau" matching operation.
func Cosine(tau float64) Sim { return similarity.CosineAtLeast(tau) }

// ParseSim parses "=", "ED,2", "JAC,0.8" or "COS,0.7".
func ParseSim(s string) (Sim, error) { return similarity.ParseSpec(s) }

// NewKB returns an empty knowledge graph.
func NewKB() *KB { return kb.New() }

// ParseKB reads a KB in the line-oriented triple format:
//
//	<Avram Hershko> <worksAt> <Israel Institute of Technology> .
//	<Avram Hershko> <bornOnDate> "1937-12-31" .
//	<Avram Hershko> <type> <Nobel laureates in Chemistry> .
//	<city> <subClassOf> <location> .
func ParseKB(r io.Reader) (*KB, error) { return kb.Parse(r) }

// WriteKBSnapshot writes g in the compact binary snapshot format:
// versioned, checksummed per section, byte-identical for the same
// graph, and several times faster to load than the text format (see
// cmd/kbtool pack/unpack/verify).
func WriteKBSnapshot(w io.Writer, g *KB) error { return g.WriteSnapshot(w) }

// LoadKBSnapshot reads a KB written by WriteKBSnapshot, verifying the
// header and every section checksum.
func LoadKBSnapshot(r io.Reader) (*KB, error) { return kb.LoadSnapshot(r) }

// WriteKBSnapshotV2 writes g in the page-aligned DKBS v2 layout whose
// arena sections LoadKBSnapshotFile maps read-only into memory and
// serves in place — cold loads in microseconds instead of a full
// decode. Like v1 it is deterministic and checksummed per section.
func WriteKBSnapshotV2(w io.Writer, g *KB) error { return g.WriteSnapshotV2(w) }

// LoadKBSnapshotFile loads a snapshot by path: DKBS v2 files are
// mmap'd in place on supported platforms (falling back to a portable
// decode elsewhere), v1 files are decoded. The returned graph is
// read-only when it is snapshot-backed.
func LoadKBSnapshotFile(path string) (*KB, error) { return kb.LoadSnapshotFile(path) }

// KBStore atomically publishes the current KB graph for zero-downtime
// hot swaps: readers pin a graph per tuple while KBStore.Swap installs
// a replacement with a bumped generation (see internal/kb.Store).
type KBStore = kb.Store

// NewKBStore wraps g (frozen) in a swappable store.
func NewKBStore(g *KB) *KBStore { return kb.NewStore(g) }

// KBDelta is the parsed form of a DKBD incremental delta file: the
// canonical, name-keyed difference between two KB contents. Deltas are
// produced by DiffKB (or `kbtool diff`) and applied copy-on-write to a
// live graph by KB.ApplyDelta or KBStore.ApplyDelta, sharing every
// untouched arena with the base generation.
type KBDelta = kb.Delta

// DiffKB computes the canonical delta that transforms old's content
// into new's. Output is deterministic: equal contents diff to equal
// bytes regardless of either graph's storage form or ID assignment.
func DiffKB(old, new *KB) *KBDelta { return kb.Diff(old, new) }

// ReadKBDelta parses a DKBD delta file, verifying magic, framing and
// every section checksum.
func ReadKBDelta(r io.Reader) (*KBDelta, error) { return kb.ReadDelta(r) }

// NewSchema creates a relation schema; attribute names must be unique.
func NewSchema(name string, attrs ...string) *Schema {
	return relation.NewSchema(name, attrs...)
}

// ReadCSV loads a table whose first CSV record is the header.
func ReadCSV(name string, r io.Reader) (*Table, error) { return relation.ReadCSV(name, r) }

// ParseRules reads detective rules in the textual rule format (see
// the rules package documentation for the grammar).
func ParseRules(r io.Reader) ([]*Rule, error) { return rules.ParseRules(r) }

// EncodeRules writes rules in the textual rule format.
func EncodeRules(w io.Writer, rs []*Rule) error { return rules.EncodeRules(w, rs) }

// Cleaner applies a set of consistent detective rules to tuples of
// one schema against one KB. It is cheap to reuse across tuples and
// tables; construct it once per (rules, KB, schema) combination.
type Cleaner struct {
	engine *Engine
}

// Engine is the underlying repair engine (exposed for benchmarking
// and for callers that need the basic algorithm or rule-order
// control).
type Engine = repair.Engine

// EngineOptions tunes the repair engine: the §IV-B ablation switches,
// the per-tuple step budget, and the streaming pipeline's Workers and
// ChunkSize. The zero value is the full fast algorithm on the serial
// streaming path.
type EngineOptions = repair.Options

// NewCleaner validates the rules against the schema and builds the
// fast repair engine of the paper's Algorithm 2 (rule-graph ordering,
// signature indexes, shared computation).
func NewCleaner(rs []*Rule, g *KB, schema *Schema) (*Cleaner, error) {
	return NewCleanerWithOptions(rs, g, schema, EngineOptions{})
}

// NewCleanerWithOptions is NewCleaner with engine tuning — most
// usefully EngineOptions.Workers, which fans the streaming cleaner
// out over a chunked parallel pipeline with ordered reassembly.
func NewCleanerWithOptions(rs []*Rule, g *KB, schema *Schema, opts EngineOptions) (*Cleaner, error) {
	e, err := repair.NewEngineWithOptions(rs, g, schema, opts)
	if err != nil {
		return nil, err
	}
	return &Cleaner{engine: e}, nil
}

// NewCleanerStore is NewCleanerWithOptions on a caller-owned KBStore,
// the shape ensemble mode needs: auxiliary proposers built on the
// same store see every graph the cleaner serves, including hot swaps.
func NewCleanerStore(rs []*Rule, store *KBStore, schema *Schema, opts EngineOptions) (*Cleaner, error) {
	e, err := repair.NewEngineStore(rs, store, schema, opts)
	if err != nil {
		return nil, err
	}
	return &Cleaner{engine: e}, nil
}

// Engine returns the underlying repair engine.
func (c *Cleaner) Engine() *Engine { return c.engine }

// Clean repairs and marks one tuple with the fast algorithm, leaving
// the input untouched. Multi-version repairs resolve to the candidate
// most similar to the current value; use CleanVersions to obtain all
// fixpoints.
func (c *Cleaner) Clean(t *Tuple) *Tuple { return c.engine.FastRepair(t) }

// CleanBasic repairs one tuple with the chase-style basic algorithm
// (Algorithm 1). Results equal Clean's for consistent rule sets; the
// cost model differs (no indexes, no rule ordering).
func (c *Cleaner) CleanBasic(t *Tuple) *Tuple { return c.engine.BasicRepair(t) }

// CleanVersions returns every repair fixpoint of t (multi-version
// repairs, §IV-C of the paper).
func (c *Cleaner) CleanVersions(t *Tuple) []*Tuple { return c.engine.RepairVersions(t) }

// Step is one rule application recorded by Explain — which rule
// fired, what it repaired and marked, and the KB instances that
// witness the decision.
type Step = repair.Step

// Explain cleans t and returns the ordered rule applications behind
// the result: the white-box provenance that distinguishes rule-based
// cleaning from IC-based black boxes (paper §I).
func (c *Cleaner) Explain(t *Tuple) (*Tuple, []Step) { return c.engine.FastRepairExplain(t) }

// CleanTable repairs and marks every tuple of tb into a new table.
func (c *Cleaner) CleanTable(tb *Table) *Table { return c.engine.RepairTable(tb, true) }

// CleanTableParallel is CleanTable fanned out over worker goroutines
// (0 = GOMAXPROCS); tuples are independent, so results are identical.
func (c *Cleaner) CleanTableParallel(tb *Table, workers int) *Table {
	return c.engine.RepairTableParallel(tb, workers)
}

// StreamStats is the per-call accounting of one streaming clean:
// rows written, quarantined and budget-degraded rows, and rows
// answered by the pipeline's in-chunk duplicate cache.
type StreamStats = repair.StreamResult

// CleanCSVStream cleans CSV row by row without materializing the
// table; the first record must be a header matching the cleaner's
// schema, and marked cells get a "+" suffix when marked is true. With
// EngineOptions.Workers > 1 rows are repaired by the parallel
// pipeline; output is byte-identical to the serial path. Mid-stream
// failures arrive as a *repair.PartialError after everything cleaned
// so far has been flushed to w.
func (c *Cleaner) CleanCSVStream(ctx context.Context, r io.Reader, w io.Writer, marked bool) (StreamStats, error) {
	return c.engine.CleanCSVStreamContext(ctx, r, w, marked)
}

// CleanCSVStreamEnsemble is CleanCSVStream in ensemble mode: rows are
// repaired by the weighted vote over the detective engine and the
// EngineOptions.Ensemble proposers, and the output CSV carries a
// trailing "confidence" column. Errors when the cleaner was built
// without EngineOptions.Ensemble.Enabled.
func (c *Cleaner) CleanCSVStreamEnsemble(ctx context.Context, r io.Reader, w io.Writer, marked bool) (StreamStats, error) {
	return c.engine.CleanCSVStreamEnsembleContext(ctx, r, w, marked)
}

// UsageReport aggregates per-rule application counts over a table.
type UsageReport = repair.UsageReport

// CleanTableWithUsage is CleanTable plus the per-rule audit report.
func (c *Cleaner) CleanTableWithUsage(tb *Table) (*Table, UsageReport) {
	return c.engine.RepairTableWithUsage(tb)
}

// CheckConsistency runs the tuples of tb through up to maxOrders rule
// application orders (0 = default) and reports tuples whose fixpoint
// depends on the order. An empty result means the rule set is
// consistent for this data (Corollary 2 of the paper).
func (c *Cleaner) CheckConsistency(tb *Table, maxOrders int) []Violation {
	return consistency.Check(c.engine, tb, maxOrders)
}

// Warning is a statically detected conflict pattern between rules.
type Warning = consistency.Warning

// AnalyzeRules statically screens a rule set for the classic conflict
// shapes (opposed semantics, divergent corrections) before any data
// is seen. Warnings are candidates to confirm with CheckConsistency;
// the general problem is coNP-complete (paper Theorem 1), so a clean
// report is not a proof.
func AnalyzeRules(rs []*Rule) []Warning { return consistency.Analyze(rs) }

// GenerateRules discovers candidate detective rules from examples:
// positives are fully correct tuples; negatives[A] are tuples wrong
// exactly in attribute A (§III-A of the paper). The returned rules
// should be reviewed before use and checked with CheckConsistency.
func GenerateRules(g *KB, schema *Schema, positives *Table,
	negatives map[string]*Table, cfg RuleGenConfig) ([]*Rule, error) {
	return rulegen.Generate(g, schema, positives, negatives, cfg)
}
