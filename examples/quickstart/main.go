// Quickstart: clean the paper's running example (Table I) with the
// four detective rules of Figure 4.
//
//	go run ./examples/quickstart
//
// The program builds the Figure 1 KB excerpt and the dirty Nobel
// relation in memory, cleans it, and prints the before/after tuples
// with "+" marks on cells proven correct — reproducing the worked
// Examples 6–9 of the paper.
package main

import (
	"fmt"
	"log"
	"strings"

	"detective"
)

const kbText = `
# Taxonomy
<Nobel laureates in Chemistry> <subClassOf> <chemist> .
<chemist> <subClassOf> <person> .

# Avram Hershko (Figure 1)
<Avram Hershko> <type> <Nobel laureates in Chemistry> .
<Israel Institute of Technology> <type> <organization> .
<Nobel Prize in Chemistry> <type> <Chemistry awards> .
<Albert Lasker Award for Medicine> <type> <American awards> .
<Karcag> <type> <city> .
<Haifa> <type> <city> .
<Israel> <type> <country> .
<Avram Hershko> <worksAt> <Israel Institute of Technology> .
<Avram Hershko> <graduatedFrom> <Hebrew University of Jerusalem> .
<Hebrew University of Jerusalem> <type> <organization> .
<Avram Hershko> <wasBornIn> <Karcag> .
<Avram Hershko> <isCitizenOf> <Israel> .
<Avram Hershko> <wonPrize> <Nobel Prize in Chemistry> .
<Avram Hershko> <wonPrize> <Albert Lasker Award for Medicine> .
<Avram Hershko> <bornOnDate> "1937-12-31" .
<Israel Institute of Technology> <locatedIn> <Haifa> .
<Karcag> <locatedIn> <Israel> .
`

const rulesText = `
# phi1: Institution is where the person works, not where they studied.
rule phi1 {
  node x1 col="Name" type="Nobel laureates in Chemistry" sim="="
  node x2 col="DOB" type="literal" sim="="
  pos p1 col="Institution" type="organization" sim="ED,2"
  neg n1 col="Institution" type="organization" sim="ED,2"
  edge x1 bornOnDate x2
  edge x1 worksAt p1
  edge x1 graduatedFrom n1
}

# phi2: City is where the institution is, not where the person was born.
rule phi2 {
  node w1 col="Name" type="Nobel laureates in Chemistry" sim="="
  node w2 col="Institution" type="organization" sim="ED,2"
  pos p2 col="City" type="city" sim="="
  neg n2 col="City" type="city" sim="="
  edge w1 worksAt w2
  edge w2 locatedIn p2
  edge w1 wasBornIn n2
}

# phi4: Prize is the chemistry award, not another award the person won.
rule phi4 {
  node v1 col="Name" type="Nobel laureates in Chemistry" sim="="
  pos p4 col="Prize" type="Chemistry awards" sim="="
  neg n4 col="Prize" type="American awards" sim="="
  edge v1 wonPrize p4
  edge v1 wonPrize n4
}
`

const tableCSV = `Name,DOB,Country,Prize,Institution,City
Avram Hershko,1937-12-31,Israel,Albert Lasker Award for Medicine,Israel Institute of Technology,Karcag
`

func main() {
	g, err := detective.ParseKB(strings.NewReader(kbText))
	if err != nil {
		log.Fatal(err)
	}
	rs, err := detective.ParseRules(strings.NewReader(rulesText))
	if err != nil {
		log.Fatal(err)
	}
	tb, err := detective.ReadCSV("Nobel", strings.NewReader(tableCSV))
	if err != nil {
		log.Fatal(err)
	}

	cleaner, err := detective.NewCleaner(rs, g, tb.Schema)
	if err != nil {
		log.Fatal(err)
	}

	// The rule set should be consistent: every application order must
	// reach the same fixpoint.
	if v := cleaner.CheckConsistency(tb, 0); len(v) > 0 {
		log.Fatalf("inconsistent rules: %v", v)
	}

	fmt.Println("dirty: ", tb.Tuples[0])
	cleaned, steps := cleaner.Explain(tb.Tuples[0])
	fmt.Println("clean: ", cleaned)
	fmt.Printf("%d of %d cells proven correct; City and Prize repaired from the KB\n\n",
		cleaned.NumMarked(), len(cleaned.Values))

	// Detective rules are white boxes: every decision comes with the
	// KB instances that witness it.
	fmt.Println("why:")
	for _, s := range steps {
		fmt.Println("  ", s)
	}
}
