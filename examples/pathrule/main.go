// Pathrule: the negative-path extension (§II-C remark) end-to-end.
//
//	go run ./examples/pathrule
//
// A wrong Zip that happens to be the zip code of the person's *birth*
// city cannot be detected by a single negative node — the wrong value
// is two KB hops away from the evidence. Declaring an existential
// path node (`path bc type="city"`) lets the rule express
// Name -bornIn-> ?city -hasZip-> n and both detect and repair it.
package main

import (
	"fmt"
	"log"
	"strings"

	"detective"
)

const kbText = `
<Ann Meyer> <type> <person> .
<Springfield> <type> <city> .
<Shelbyville> <type> <city> .
<11111> <type> <zipcode> .
<22222> <type> <zipcode> .
<Ann Meyer> <livesIn> <Springfield> .
<Ann Meyer> <bornIn> <Shelbyville> .
<Springfield> <hasZip> <11111> .
<Shelbyville> <hasZip> <22222> .
`

const ruleText = `
rule zip_path {
  node e1 col="Name" type="person" sim="="
  node e2 col="City" type="city" sim="="
  pos  p col="Zip" type="zipcode" sim="ED,1"
  neg  n col="Zip" type="zipcode" sim="="
  path bc type="city"
  edge e1 livesIn e2
  edge e2 hasZip p
  edge e1 bornIn bc
  edge bc hasZip n
}
`

func main() {
	g, err := detective.ParseKB(strings.NewReader(kbText))
	if err != nil {
		log.Fatal(err)
	}
	rs, err := detective.ParseRules(strings.NewReader(ruleText))
	if err != nil {
		log.Fatal(err)
	}
	schema := detective.NewSchema("UIS", "Name", "City", "Zip")
	cleaner, err := detective.NewCleaner(rs, g, schema)
	if err != nil {
		log.Fatal(err)
	}

	rows := [][]string{
		{"Ann Meyer", "Springfield", "22222"}, // birth-city zip: the path detects it
		{"Ann Meyer", "Springfield", "11111"}, // correct: proof positive
		{"Ann Meyer", "Springfield", "99999"}, // unrelated zip: conservatively untouched
	}
	for _, vals := range rows {
		tb := &detective.Table{Schema: schema}
		tb.Tuples = append(tb.Tuples, &detective.Tuple{Values: vals, Marked: make([]bool, 3)})
		cleaned, steps := cleaner.Explain(tb.Tuples[0])
		fmt.Printf("in:  (%s)\nout: %v\n", strings.Join(vals, ", "), cleaned)
		for _, s := range steps {
			fmt.Println("     ", s)
		}
		fmt.Println()
	}
}
