// Nobel: the paper's headline scenario end-to-end — generate the
// 1,069-laureate relation and its Yago/DBpedia-like KB builds, inject
// 10% errors (half typos, half semantic confusions such as the birth
// city in place of the work city), clean with detective rules, and
// report cell-level precision/recall against ground truth.
//
//	go run ./examples/nobel
package main

import (
	"fmt"
	"log"

	"detective"
	"detective/internal/dataset"
)

func main() {
	bundle := dataset.NewNobel(1, 1069)
	inj := bundle.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 42})
	fmt.Printf("Nobel: %d tuples, %d injected errors (%d typos, %d semantic)\n",
		bundle.Truth.Len(), len(inj.Wrong), inj.Typos, inj.Semantics)

	for _, kbName := range dataset.KBNames {
		g := bundle.KB(kbName)
		cleaner, err := detective.NewCleaner(bundle.Rules, g, bundle.Schema)
		if err != nil {
			log.Fatal(err)
		}
		cleaned := cleaner.CleanTable(inj.Dirty)

		// Score by hand to show exactly what the metrics mean.
		repaired, correct := 0, 0
		for i, tu := range cleaned.Tuples {
			for j, got := range tu.Values {
				if got == inj.Dirty.Tuples[i].Values[j] {
					continue
				}
				repaired++
				if got == bundle.Truth.Tuples[i].Values[j] {
					correct++
				}
			}
		}
		fmt.Printf("%-8s repaired %4d cells (%d correctly), marked %5d cells positive\n",
			kbName, repaired, correct, cleaned.NumMarked())
	}

	// Show one concrete repair.
	for cell, truth := range inj.Wrong {
		row, col := cell[0], cell[1]
		attr := bundle.Schema.Attrs[col]
		cleaner, _ := detective.NewCleaner(bundle.Rules, bundle.Yago, bundle.Schema)
		got := cleaner.Clean(inj.Dirty.Tuples[row])
		if got.Values[col] == truth {
			fmt.Printf("\nexample repair: %s[%s] %q -> %q\n",
				inj.Dirty.Tuples[row].Values[0], attr, inj.Dirty.Tuples[row].Values[col], got.Values[col])
			break
		}
	}
}
