// Webtables: batch-clean a corpus of small Web tables against a
// shared KB — the paper's WebTables scenario. Thirty-seven tables from
// ten domains (country–capital, author–book, film–director, …) are
// cleaned with per-table rule sets; tables with only two attributes
// use annotation-only rules, the paper's conservative stance when no
// negative semantics can be trusted.
//
//	go run ./examples/webtables
package main

import (
	"fmt"
	"log"

	"detective"
	"detective/internal/dataset"
)

func main() {
	wb := dataset.NewWebTables(7)
	fmt.Printf("cleaning %d web tables against the Yago-like KB (%v)\n\n", len(wb.Tables), wb.Yago)

	totalRepaired, totalCorrect, totalMarked, totalErrors := 0, 0, 0, 0
	for i, d := range wb.Tables {
		inj := d.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.6, HardFrac: 0.1,
			SwapFallback: true, Seed: int64(i)})
		cleaner, err := detective.NewCleaner(d.Rules, wb.Yago, d.Schema)
		if err != nil {
			log.Fatal(err)
		}
		cleaned := cleaner.CleanTable(inj.Dirty)

		repaired, correct := 0, 0
		for r, tu := range cleaned.Tuples {
			for c, got := range tu.Values {
				if got == inj.Dirty.Tuples[r].Values[c] {
					continue
				}
				repaired++
				if got == d.Truth.Tuples[r].Values[c] {
					correct++
				}
			}
		}
		totalRepaired += repaired
		totalCorrect += correct
		totalMarked += cleaned.NumMarked()
		totalErrors += len(inj.Wrong)
		if i < 5 {
			fmt.Printf("  %-14s %2d rows  %2d errors  %2d repaired  %3d cells marked\n",
				d.Name, d.Truth.Len(), len(inj.Wrong), repaired, cleaned.NumMarked())
		}
	}
	fmt.Printf("  ... and %d more tables\n\n", len(wb.Tables)-5)

	precision := 1.0
	if totalRepaired > 0 {
		precision = float64(totalCorrect) / float64(totalRepaired)
	}
	fmt.Printf("corpus: %d errors, %d repairs (precision %.2f), %d cells annotated correct\n",
		totalErrors, totalRepaired, precision, totalMarked)
	fmt.Println("note: 2-column tables are annotation-only — wrong values there are")
	fmt.Println("left untouched rather than guessed, which is what keeps precision at ~1.")
}
