// Rulegen: discover detective rules from positive and negative
// examples (§III-A of the paper) instead of writing them by hand.
//
//	go run ./examples/rulegen
//
// Positive examples are correct laureate tuples; negative examples are
// tuples wrong in exactly one attribute (City holds the birth city,
// Prize holds a non-chemistry award). The generator types the columns
// against the KB, discovers the relationships of correct and wrong
// values, and merges them into candidate rules for review.
package main

import (
	"fmt"
	"log"
	"os"

	"detective"
	"detective/internal/dataset"
)

func main() {
	ex := dataset.NewPaperExample()

	// Negative examples: copies of the ground truth wrong in one column.
	wrongCity := &detective.Table{Schema: ex.Schema}
	for _, tu := range ex.Truth.Tuples {
		cl := tu.Clone()
		cl.Values[ex.Schema.MustCol("City")] = map[string]string{
			"Avram Hershko": "Karcag", "Marie Curie": "Warsaw",
			"Roald Hoffmann": "Zolochiv", "Melvin Calvin": "St. Paul",
		}[tu.Values[0]]
		wrongCity.Tuples = append(wrongCity.Tuples, cl)
	}
	wrongPrize := &detective.Table{Schema: ex.Schema}
	for _, tu := range ex.Truth.Tuples[:1] {
		cl := tu.Clone()
		cl.Values[ex.Schema.MustCol("Prize")] = "Albert Lasker Award for Medicine"
		wrongPrize.Tuples = append(wrongPrize.Tuples, cl)
	}

	cfg := detective.RuleGenConfig{
		Sims:        map[string]detective.Sim{"Institution": detective.EditDistance(2)},
		MaxEvidence: 2, // keep the generated rules small
	}
	rules, err := detective.GenerateRules(ex.KB, ex.Schema, ex.Truth,
		map[string]*detective.Table{"City": wrongCity, "Prize": wrongPrize}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generated %d candidate rules:\n\n", len(rules))
	if err := detective.EncodeRules(os.Stdout, rules); err != nil {
		log.Fatal(err)
	}

	// The generated rules immediately clean the dirty running example.
	cleaner, err := detective.NewCleaner(rules, ex.KB, ex.Schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndirty r1:", ex.Dirty.Tuples[0])
	fmt.Println("clean r1:", cleaner.Clean(ex.Dirty.Tuples[0]))
}
