// Multiversion: reproduce Example 10 of the paper — when the KB holds
// two work institutions for Melvin Calvin, the single dirty tuple
// cleans to two equally valid fixpoints; the cleaner returns both.
//
//	go run ./examples/multiversion
package main

import (
	"fmt"
	"log"

	"detective"
	"detective/internal/dataset"
)

func main() {
	ex := dataset.NewPaperExample()
	cleaner, err := detective.NewCleaner(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		log.Fatal(err)
	}

	r4 := ex.Dirty.Tuples[3] // Melvin Calvin, Institution and City wrong
	fmt.Println("dirty:", r4)

	versions := cleaner.CleanVersions(r4)
	fmt.Printf("\n%d repair fixpoints:\n", len(versions))
	for i, v := range versions {
		fmt.Printf("  version %d: %v\n", i+1, v)
	}

	// The deterministic single-version result is the candidate most
	// similar to the dirty value (here "University of Manchester",
	// closest to "University of Minnesota").
	fmt.Println("\nsingle-version result:", cleaner.Clean(r4))
}
