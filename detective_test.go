package detective_test

import (
	"bytes"
	"strings"
	"testing"

	"detective"
	"detective/internal/dataset"
)

// exampleKBText is the running example's KB in the public text format.
const exampleKBText = `
<Avram Hershko> <type> <Nobel laureates in Chemistry> .
<Israel Institute of Technology> <type> <organization> .
<Karcag> <type> <city> .
<Haifa> <type> <city> .
<Israel> <type> <country> .
<Avram Hershko> <worksAt> <Israel Institute of Technology> .
<Avram Hershko> <wasBornIn> <Karcag> .
<Avram Hershko> <isCitizenOf> <Israel> .
<Avram Hershko> <bornOnDate> "1937-12-31" .
<Israel Institute of Technology> <locatedIn> <Haifa> .
`

const exampleRuleText = `
rule city {
  node w1 col="Name" type="Nobel laureates in Chemistry" sim="="
  node w2 col="Institution" type="organization" sim="ED,2"
  pos p col="City" type="city" sim="="
  neg n col="City" type="city" sim="="
  edge w1 worksAt w2
  edge w2 locatedIn p
  edge w1 wasBornIn n
}
`

func TestPublicAPIQuickstart(t *testing.T) {
	g, err := detective.ParseKB(strings.NewReader(exampleKBText))
	if err != nil {
		t.Fatalf("ParseKB: %v", err)
	}
	rs, err := detective.ParseRules(strings.NewReader(exampleRuleText))
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	csv := "Name,Institution,City\nAvram Hershko,Israel Institute of Technology,Karcag\n"
	tb, err := detective.ReadCSV("Nobel", strings.NewReader(csv))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	c, err := detective.NewCleaner(rs, g, tb.Schema)
	if err != nil {
		t.Fatalf("NewCleaner: %v", err)
	}
	cleaned := c.CleanTable(tb)
	if got := cleaned.Cell(0, "City"); got != "Haifa" {
		t.Fatalf("City = %q, want Haifa", got)
	}
	if !cleaned.Tuples[0].IsMarked() {
		t.Fatal("tuple should carry positive marks")
	}
	if tb.Cell(0, "City") != "Karcag" {
		t.Fatal("input table was mutated")
	}
}

func TestPublicAPISimConstructors(t *testing.T) {
	for _, c := range []struct {
		sim  detective.Sim
		text string
	}{
		{detective.Eq, "="},
		{detective.EditDistance(2), "ED,2"},
		{detective.Jaccard(0.8), "JAC,0.8"},
		{detective.Cosine(0.7), "COS,0.7"},
	} {
		if c.sim.String() != c.text {
			t.Errorf("sim %v renders %q, want %q", c.sim, c.sim.String(), c.text)
		}
		parsed, err := detective.ParseSim(c.text)
		if err != nil || parsed != c.sim {
			t.Errorf("ParseSim(%q) = %v, %v", c.text, parsed, err)
		}
	}
}

func TestPublicAPICleanVersions(t *testing.T) {
	ex := dataset.NewPaperExample()
	c, err := detective.NewCleaner(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	versions := c.CleanVersions(ex.Dirty.Tuples[3])
	if len(versions) != 2 {
		t.Fatalf("CleanVersions = %d fixpoints, want 2", len(versions))
	}
	if !c.CleanBasic(ex.Dirty.Tuples[0]).EqualMarked(c.Clean(ex.Dirty.Tuples[0])) {
		t.Fatal("CleanBasic and Clean disagree")
	}
}

func TestPublicAPIConsistency(t *testing.T) {
	ex := dataset.NewPaperExample()
	c, err := detective.NewCleaner(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if v := c.CheckConsistency(ex.Dirty, 0); len(v) != 0 {
		t.Fatalf("paper rules reported inconsistent: %v", v)
	}
}

func TestPublicAPIRuleRoundTrip(t *testing.T) {
	rs, err := detective.ParseRules(strings.NewReader(exampleRuleText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := detective.EncodeRules(&buf, rs); err != nil {
		t.Fatal(err)
	}
	again, err := detective.ParseRules(&buf)
	if err != nil || len(again) != len(rs) {
		t.Fatalf("round trip: %v (%d rules)", err, len(again))
	}
}

func TestPublicAPIGenerateRules(t *testing.T) {
	ex := dataset.NewPaperExample()
	negatives := map[string]*detective.Table{"City": func() *detective.Table {
		tb := &detective.Table{Schema: ex.Schema}
		for _, tu := range ex.Truth.Tuples {
			cl := tu.Clone()
			cl.Values[ex.Schema.MustCol("City")] = "Karcag"
			tb.Tuples = append(tb.Tuples, cl)
		}
		// Only Hershko's row is a realistic negative example (born in
		// Karcag); keep just that one plus Curie's Warsaw.
		tb.Tuples = tb.Tuples[:1]
		return tb
	}()}
	cfg := detective.RuleGenConfig{
		MinTypeSupport: 0.5, MinRelSupport: 0.5,
		Sims: map[string]detective.Sim{"Institution": detective.EditDistance(2)},
	}
	rs, err := detective.GenerateRules(ex.KB, ex.Schema, ex.Truth, negatives, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].PosCol() != "City" {
		t.Fatalf("GenerateRules = %v", rs)
	}
}

func TestPublicAPIUsageAndParallel(t *testing.T) {
	ex := dataset.NewPaperExample()
	c, err := detective.NewCleaner(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	serial := c.CleanTable(ex.Dirty)
	parallel := c.CleanTableParallel(ex.Dirty, 3)
	for i := range serial.Tuples {
		if !serial.Tuples[i].EqualMarked(parallel.Tuples[i]) {
			t.Fatalf("row %d: parallel differs", i)
		}
	}
	cleaned, report := c.CleanTableWithUsage(ex.Dirty)
	if report.Tuples != 4 || len(report.PerRule) != 4 {
		t.Fatalf("report = %+v", report)
	}
	for i := range serial.Tuples {
		if !serial.Tuples[i].EqualMarked(cleaned.Tuples[i]) {
			t.Fatalf("row %d: usage-run differs", i)
		}
	}
}

func TestPublicAPIExplain(t *testing.T) {
	ex := dataset.NewPaperExample()
	c, err := detective.NewCleaner(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	cleaned, steps := c.Explain(ex.Dirty.Tuples[0])
	if !cleaned.EqualMarked(c.Clean(ex.Dirty.Tuples[0])) {
		t.Fatal("Explain result differs from Clean")
	}
	if len(steps) == 0 {
		t.Fatal("no steps")
	}
}

func TestPublicAPIAnalyzeRules(t *testing.T) {
	ex := dataset.NewPaperExample()
	if ws := detective.AnalyzeRules(ex.Rules); len(ws) != 0 {
		t.Fatalf("paper rules flagged: %v", ws)
	}
}
