// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each BenchmarkTableX/BenchmarkFigureX runs the
// corresponding experiment driver end-to-end at a reduced scale (one
// iteration is a full experiment); use cmd/experiments for the
// presentation-quality runs and -paper-scale for the paper's sizes.
// The per-tuple micro-benchmarks at the bottom isolate the repair
// engines themselves (bRepair vs fRepair — the Figure 8 contrast).
package detective_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"detective/internal/dataset"
	"detective/internal/eval"
	"detective/internal/katara"
	"detective/internal/relation"
	"detective/internal/repair"
)

// benchConfig keeps one experiment iteration small enough for
// `go test -bench=.` while exercising every code path.
func benchConfig() eval.ExpConfig {
	cfg := eval.DefaultConfig()
	cfg.NobelTuples = 300
	cfg.UISTuples = 500
	cfg.Rates = []float64{0.04, 0.12, 0.20}
	cfg.TypoRates = []float64{0, 0.5, 1.0}
	cfg.Fig8Tuples = []int{200, 400}
	cfg.Fig8UISSize = 300
	return cfg
}

func BenchmarkTableII(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := eval.TableII(cfg); len(rows) != 6 {
			b.Fatalf("TableII returned %d rows", len(rows))
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.TableIII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("TableIII returned %d rows", len(rows))
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8a(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure8a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8b(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure8b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8c(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure8c(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8d(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure8d(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- per-tuple engine micro-benchmarks -------------------------------

// nobelEngine builds the micro-benchmark engine with the repair memo
// off: these series measure the cold repair kernel, and a warm memo
// would collapse them into cache lookups after the first pass over
// the corpus. BenchmarkFastRepairTupleMemoHit tracks the memoized
// path separately.
func nobelEngine(b *testing.B, n int) (*dataset.Bundle, *dataset.Injected, *repair.Engine) {
	b.Helper()
	bundle := dataset.NewNobel(1, n)
	inj := bundle.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 1})
	e, err := repair.NewEngineWithOptions(bundle.Rules, bundle.Yago, bundle.Schema,
		repair.Options{MemoDisabled: true})
	if err != nil {
		b.Fatal(err)
	}
	e.Warm()
	return bundle, inj, e
}

// BenchmarkBRepairTuple vs BenchmarkFastRepairTuple is the per-tuple
// view of Figure 8's bRepair/fRepair gap: the basic algorithm scans
// class extents, the fast one uses the signature indexes, rule
// ordering, shared checks with dense IDs, pooled per-tuple state and
// the cross-tuple candidate cache. BenchmarkFastRepairTuple's
// allocs/op is the number tracked across PRs in BENCH_repair.json
// (see cmd/experiments -bench-repair).
func BenchmarkBRepairTuple(b *testing.B) {
	_, inj, e := nobelEngine(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BasicRepair(inj.Dirty.Tuples[i%inj.Dirty.Len()])
	}
}

func BenchmarkFastRepairTuple(b *testing.B) {
	_, inj, e := nobelEngine(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.FastRepair(inj.Dirty.Tuples[i%inj.Dirty.Len()])
	}
}

// BenchmarkFastRepairTupleMemoHit is the warm half of the memo story:
// every iteration replays rows already resident in the tuple tier via
// the allocation-free RepairRow API. The contract tracked across PRs
// is sub-microsecond ns/op and 0 allocs/op.
func BenchmarkFastRepairTupleMemoHit(b *testing.B) {
	bundle := dataset.NewNobel(1, 500)
	inj := bundle.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 1})
	e, err := repair.NewEngine(bundle.Rules, bundle.Yago, bundle.Schema)
	if err != nil {
		b.Fatal(err)
	}
	e.Warm()
	recs := make([][]string, inj.Dirty.Len())
	dst := &relation.Tuple{
		Values: make([]string, len(bundle.Schema.Attrs)),
		Marked: make([]bool, len(bundle.Schema.Attrs)),
	}
	for i, t := range inj.Dirty.Tuples {
		recs[i] = t.Values
		e.RepairRow(dst, t.Values) // populate the memo
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit := e.RepairRow(dst, recs[i%len(recs)]); !hit {
			b.Fatal("warm repair missed the memo")
		}
	}
}

func BenchmarkRepairVersionsTuple(b *testing.B) {
	_, inj, e := nobelEngine(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RepairVersions(inj.Dirty.Tuples[i%inj.Dirty.Len()])
	}
}

func BenchmarkKATARATuple(b *testing.B) {
	bundle, inj, _ := nobelEngine(b, 500)
	s, err := katara.New(bundle.Pattern, bundle.Yago, bundle.Schema)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Clean(inj.Dirty.Tuples[i%inj.Dirty.Len()])
	}
}

func BenchmarkEngineConstruction(b *testing.B) {
	bundle := dataset.NewNobel(1, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := repair.NewEngine(bundle.Rules, bundle.Yago, bundle.Schema)
		if err != nil {
			b.Fatal(err)
		}
		e.Warm()
	}
}

// --- ablation benchmarks (the three §IV-B optimizations) -------------

func benchAblation(b *testing.B, opts repair.Options) {
	bundle := dataset.NewUIS(1, 1500)
	inj := bundle.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 1})
	opts.MemoDisabled = true // ablations contrast the cold kernel
	e, err := repair.NewEngineWithOptions(bundle.Rules, bundle.Yago, bundle.Schema, opts)
	if err != nil {
		b.Fatal(err)
	}
	e.Warm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.FastRepair(inj.Dirty.Tuples[i%inj.Dirty.Len()])
	}
}

func BenchmarkAblationFull(b *testing.B)        { benchAblation(b, repair.Options{}) }
func BenchmarkAblationNoRuleOrder(b *testing.B) { benchAblation(b, repair.Options{NoRuleOrder: true}) }
func BenchmarkAblationNoSharedChecks(b *testing.B) {
	benchAblation(b, repair.Options{NoSharedChecks: true})
}
func BenchmarkAblationNoIndexes(b *testing.B) { benchAblation(b, repair.Options{NoIndexes: true}) }

func BenchmarkRepairTableParallel(b *testing.B) {
	bundle := dataset.NewUIS(1, 1500)
	inj := bundle.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 1})
	e, err := repair.NewEngineWithOptions(bundle.Rules, bundle.Yago, bundle.Schema,
		repair.Options{MemoDisabled: true})
	if err != nil {
		b.Fatal(err)
	}
	e.Warm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RepairTableParallel(inj.Dirty, 0)
	}
}

// BenchmarkCleanCSVStreamParallel measures streaming rows/sec on the
// duplicate-heavy bench corpus (each Nobel row repeated in a 1–8 row
// burst) across pipeline widths. workers=1 is the serial path; wider
// runs add the chunked pipeline's in-chunk dedup plus, on multi-core
// machines, worker parallelism. This is the benchmark the CI
// regression gate (cmd/benchdiff) tracks via cmd/experiments
// -bench-repair.
func BenchmarkCleanCSVStreamParallel(b *testing.B) {
	bundle := dataset.NewNobel(1, 400)
	inj := bundle.Inject(dataset.Noise{Rate: 0.30, TypoFrac: 0.5, Seed: 1})
	corpus := dataset.DuplicateBursts(inj.Dirty, 1, 16)
	var buf bytes.Buffer
	if err := corpus.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	input := buf.String()

	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e, err := repair.NewEngineWithOptions(bundle.Rules, bundle.Yago, bundle.Schema,
				repair.Options{Workers: workers, MemoDisabled: true})
			if err != nil {
				b.Fatal(err)
			}
			e.Warm()
			b.ReportAllocs()
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.CleanCSVStreamContext(context.Background(),
					strings.NewReader(input), io.Discard, true)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rows != corpus.Len() {
					b.Fatalf("streamed %d of %d rows", res.Rows, corpus.Len())
				}
			}
			b.ReportMetric(float64(corpus.Len()*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkCleanCSVStreamZipf measures streaming rows/sec on a
// Zipf-skewed corpus (s=1.1 over the Nobel dirty rows — the
// head-heavy shape of real dirty feeds) with the global repair memo
// on. Contrast with BenchmarkCleanCSVStreamParallel, which runs the
// same pipeline widths memo-disabled on the duplicate-burst corpus:
// on the skewed corpus the memo serves the hot head from cache, so
// rows/s should sit well above the memo-disabled series.
func BenchmarkCleanCSVStreamZipf(b *testing.B) {
	bundle := dataset.NewNobel(1, 400)
	inj := bundle.Inject(dataset.Noise{Rate: 0.30, TypoFrac: 0.5, Seed: 1})
	corpus := dataset.ZipfTable(inj.Dirty, 1, 1.1, 8192)
	var buf bytes.Buffer
	if err := corpus.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	input := buf.String()

	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e, err := repair.NewEngineWithOptions(bundle.Rules, bundle.Yago, bundle.Schema,
				repair.Options{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			e.Warm()
			b.ReportAllocs()
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.CleanCSVStreamContext(context.Background(),
					strings.NewReader(input), io.Discard, true)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rows != corpus.Len() {
					b.Fatalf("streamed %d of %d rows", res.Rows, corpus.Len())
				}
			}
			b.ReportMetric(float64(corpus.Len()*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

func BenchmarkExtensionPathRule(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.ExtensionPathRule(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
