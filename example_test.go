package detective_test

import (
	"fmt"
	"log"
	"strings"

	"detective"
)

// Example demonstrates the whole public API on the paper's running
// example: build a KB, define one detective rule, clean a dirty tuple,
// and print the witnessed explanation.
func Example() {
	kbText := `
<Avram Hershko> <type> <Nobel laureates in Chemistry> .
<Israel Institute of Technology> <type> <organization> .
<Karcag> <type> <city> .
<Haifa> <type> <city> .
<Avram Hershko> <worksAt> <Israel Institute of Technology> .
<Avram Hershko> <wasBornIn> <Karcag> .
<Israel Institute of Technology> <locatedIn> <Haifa> .
`
	ruleText := `
rule city {
  node w1 col="Name" type="Nobel laureates in Chemistry" sim="="
  node w2 col="Institution" type="organization" sim="ED,2"
  pos p col="City" type="city" sim="="
  neg n col="City" type="city" sim="="
  edge w1 worksAt w2
  edge w2 locatedIn p
  edge w1 wasBornIn n
}
`
	g, err := detective.ParseKB(strings.NewReader(kbText))
	if err != nil {
		log.Fatal(err)
	}
	rules, err := detective.ParseRules(strings.NewReader(ruleText))
	if err != nil {
		log.Fatal(err)
	}
	table, err := detective.ReadCSV("Nobel", strings.NewReader(
		"Name,Institution,City\nAvram Hershko,Israel Institute of Technology,Karcag\n"))
	if err != nil {
		log.Fatal(err)
	}
	cleaner, err := detective.NewCleaner(rules, g, table.Schema)
	if err != nil {
		log.Fatal(err)
	}

	cleaned, steps := cleaner.Explain(table.Tuples[0])
	fmt.Println(cleaned)
	for _, s := range steps {
		fmt.Println(s)
	}
	// Output:
	// (Avram Hershko+, Israel Institute of Technology+, Haifa+)
	// rule city: repaired City "Karcag" -> "Haifa"; marked Name, Institution, City correct [witness: n=Karcag, w1=Avram Hershko, w2=Israel Institute of Technology]
}
